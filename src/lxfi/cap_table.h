// Per-principal capability tables (§5).
//
// One hash structure per capability kind. WRITE capabilities are identified
// by an address *range*; to keep lookups constant-time the table inserts each
// range into every 4 KiB-masked bucket it covers (the paper masks the low 12
// bits of the address when computing hash keys), so a containment query
// probes exactly one bucket. The paper found this beats a balanced tree for
// the ≤page-sized objects kernel modules manipulate; bench_captable measures
// that claim against an ordered interval map and against the node-based
// std::unordered_map layout this table replaced.
//
// All three structures are open-addressing flat tables (src/base/flat_table.h):
// WRITE ranges live in an interleaved FlatRangeMap (bucket key and range in
// one 32-byte slot; a bucket covered by several ranges owns several slots on
// one probe chain), CALL and REF in FlatSets, so the common probe touches
// one short run of contiguous memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/flat_table.h"
#include "src/base/hash.h"
#include "src/base/trace.h"
#include "src/lxfi/cap.h"

namespace lxfi {

// Process-wide generation counter bumped on every capability removal (revoke
// or table clear) anywhere. EnforcementContext memos (last-hit WRITE range,
// last-checked CALL target) record the generation observed *before* the
// validating table probe; a bump anywhere invalidates every memo, which is
// the conservative direction — a stale *positive* memo could otherwise
// outlive the grant that justified it. Grants never bump it: adding
// capabilities cannot turn a cached "allowed" into "denied". Revocation is
// rare (transfer() actions, module unload), so the cost is an extra full
// lookup right after one, never a missed check.
//
// SMP ordering: Bump() is acq_rel and Current() is acquire, so any thread
// that observes (via any release/acquire chain) that a revoke has returned
// also observes an epoch at least as new as that revoke's bump — its memos
// filled under the old epoch can never validate. Combined with the rule
// that revokes mutate the table *before* bumping, a revoke that has
// returned is never passed by any CPU afterwards (the concurrent stress
// test asserts exactly this).
class RevocationEpoch {
 public:
  // Acquire: the fill-protocol reads that must not sink past the table
  // probe (WriteTableProbe and friends read the epoch *before* probing).
  static uint64_t Current() { return counter_.load(std::memory_order_acquire); }
  // Relaxed: memo-hit validation. The cross-CPU guarantee does not need
  // ordering here — whoever observes (through any release/acquire chain)
  // that a revoke returned also has the bump in their happens-before past,
  // and coherence then forbids a relaxed load from returning the pre-bump
  // value. Keeping this relaxed lets the compiler schedule the hit path
  // exactly as the pre-SMP code did.
  static uint64_t CurrentRelaxed() { return counter_.load(std::memory_order_relaxed); }
  static void Bump() {
    uint64_t now = counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Revocation is rare by design (see above), so the tracepoint sits on a
    // cold path; when tracing is off it costs one relaxed load + branch.
    TRACE_EVENT(TraceEvent::kEpochBump, 0, now, 0);
  }

 private:
  static inline std::atomic<uint64_t> counter_{1};
};

class CapTable {
 public:
  static constexpr uintptr_t kBucketShift = 12;

  CapTable() = default;
  // Destroying a table that still holds capabilities is a removal event for
  // memo purposes: a global principal's memo may have been satisfied by an
  // instance table that is being dropped (principal teardown, module unload).
  ~CapTable() {
    if (!write_buckets_.empty() || !call_.empty()) {
      RevocationEpoch::Bump();
    }
  }

  // --- WRITE --------------------------------------------------------------
  void GrantWrite(uintptr_t addr, size_t size);
  // Removes all WRITE ranges overlapping [addr, addr+size); returns true if
  // anything was removed.
  bool RevokeWriteOverlapping(uintptr_t addr, size_t size);
  // True iff some granted range fully contains [addr, addr+size).
  // Inline: this is the store-guard probe, called on every module write.
  bool CheckWrite(uintptr_t addr, size_t size) const {
    uintptr_t lo, hi;
    return FindWriteRange(addr, size, &lo, &hi);
  }
  // Like CheckWrite, but also reports the containing granted range
  // [*lo, *hi) so callers can memoize it (EnforcementContext fast path).
  bool FindWriteRange(uintptr_t addr, size_t size, uintptr_t* lo, uintptr_t* hi) const {
    if (size == 0) {
      // Vacuously allowed; memoize nothing ([addr, addr) contains no byte).
      *lo = addr;
      *hi = addr;
      return true;
    }
    uintptr_t qend = RangeEnd(addr, size);
    return write_buckets_.FindContaining(BucketKey(BucketOf(addr)), addr, qend, lo, hi);
  }
  // Enumerates distinct granted ranges, deduplicated and sorted by
  // (addr, size) — deterministic for snapshots and writer-set seeding.
  std::vector<Capability> WriteRanges() const;

  // --- CALL ---------------------------------------------------------------
  void GrantCall(uintptr_t target) { call_.Insert(target); }
  bool RevokeCall(uintptr_t target) {
    if (!call_.Erase(target)) {
      return false;
    }
    RevocationEpoch::Bump();
    return true;
  }
  bool CheckCall(uintptr_t target) const { return call_.Contains(target); }

  // --- REF ----------------------------------------------------------------
  void GrantRef(RefTypeId type, uintptr_t addr) { ref_.Insert(RefKey(type, addr)); }
  bool RevokeRef(RefTypeId type, uintptr_t addr) { return ref_.Erase(RefKey(type, addr)); }
  bool CheckRef(RefTypeId type, uintptr_t addr) const { return ref_.Contains(RefKey(type, addr)); }

  // --- generic ------------------------------------------------------------
  void Grant(const Capability& cap);
  bool Check(const Capability& cap) const;
  // Revokes `cap` (range-overlap semantics for WRITE); returns true if held.
  bool Revoke(const Capability& cap);

  void Clear();

  // --- SMP read-mostly mode -------------------------------------------------
  // Attaches the grace-period reclaimer to all three tables; after this,
  // the *Concurrent probes below are safe against concurrent mutation
  // (which must itself be serialized by the owning principal's lock).
  void SetReclaimer(EpochReclaimer* reclaimer) {
    write_buckets_.SetReclaimer(reclaimer);
    call_.SetReclaimer(reclaimer);
    ref_.SetReclaimer(reclaimer);
  }

  // Lock-free seqlock-validated probes (the SMP enforcement slow paths).
  bool FindWriteRangeConcurrent(uintptr_t addr, size_t size, uintptr_t* lo, uintptr_t* hi) const {
    if (size == 0) {
      *lo = addr;
      *hi = addr;
      return true;
    }
    uintptr_t qend = RangeEnd(addr, size);
    return write_buckets_.FindContainingConcurrent(BucketKey(BucketOf(addr)), addr, qend, lo, hi);
  }
  bool CheckWriteConcurrent(uintptr_t addr, size_t size) const {
    uintptr_t lo, hi;
    return FindWriteRangeConcurrent(addr, size, &lo, &hi);
  }
  bool CheckCallConcurrent(uintptr_t target) const { return call_.ContainsConcurrent(target); }
  bool CheckRefConcurrent(RefTypeId type, uintptr_t addr) const {
    return ref_.ContainsConcurrent(RefKey(type, addr));
  }
  bool CheckConcurrent(const Capability& cap) const;

  // Revoke pre-filter: true when this table might hold state that
  // Revoke(cap) would remove. Lock-free, so RevokeEverywhere only locks
  // principals that can actually be affected; a false positive costs a
  // locked no-op revoke, a false negative can only happen for a capability
  // granted concurrently with the revoke (the two were unordered anyway).
  bool MightHoldConcurrent(const Capability& cap) const;

  size_t write_count() const;
  size_t call_count() const { return call_.size(); }
  size_t ref_count() const { return ref_.size(); }

 private:
  static uint64_t RefKey(RefTypeId type, uintptr_t addr) {
    return HashCombine(type, static_cast<uint64_t>(addr));
  }

  static uintptr_t BucketOf(uintptr_t addr) { return addr >> kBucketShift; }

  // FlatRangeMap keys must be non-zero; bucket 0 (user-space base) is real.
  static uint64_t BucketKey(uintptr_t bucket) { return bucket + 1; }

  // End of [addr, addr+size), saturated so a range touching the top of the
  // address space cannot wrap to bucket 0 and strand stale copies.
  static uintptr_t RangeEnd(uintptr_t addr, size_t size) {
    uintptr_t end = addr + size;
    return end < addr ? ~uintptr_t{0} : end;
  }

  // bucket -> ranges that intersect the bucket's 4 KiB span, stored
  // interleaved (key and range in one slot) so the store-guard probe is a
  // single dependent load chain.
  FlatRangeMap write_buckets_;
  FlatSet call_;
  FlatSet ref_;
};

}  // namespace lxfi
