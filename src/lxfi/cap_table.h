// Per-principal capability tables (§5).
//
// One hash structure per capability kind. WRITE capabilities are identified
// by an address *range*; to keep lookups constant-time the table inserts each
// range into every 4 KiB-masked bucket it covers (the paper masks the low 12
// bits of the address when computing hash keys), so a containment query
// probes exactly one bucket. The paper found this beats a balanced tree for
// the ≤page-sized objects kernel modules manipulate; bench_captable measures
// that claim against an ordered interval map.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/hash.h"
#include "src/lxfi/cap.h"

namespace lxfi {

class CapTable {
 public:
  static constexpr uintptr_t kBucketShift = 12;

  // --- WRITE --------------------------------------------------------------
  void GrantWrite(uintptr_t addr, size_t size);
  // Removes all WRITE ranges overlapping [addr, addr+size); returns true if
  // anything was removed.
  bool RevokeWriteOverlapping(uintptr_t addr, size_t size);
  // True iff some granted range fully contains [addr, addr+size).
  bool CheckWrite(uintptr_t addr, size_t size) const;
  // Enumerates distinct granted ranges (for writer-set seeding and debug).
  std::vector<Capability> WriteRanges() const;

  // --- CALL ---------------------------------------------------------------
  void GrantCall(uintptr_t target) { call_.insert(target); }
  bool RevokeCall(uintptr_t target) { return call_.erase(target) != 0; }
  bool CheckCall(uintptr_t target) const { return call_.count(target) != 0; }

  // --- REF ----------------------------------------------------------------
  void GrantRef(RefTypeId type, uintptr_t addr) { ref_.insert(RefKey(type, addr)); }
  bool RevokeRef(RefTypeId type, uintptr_t addr) { return ref_.erase(RefKey(type, addr)) != 0; }
  bool CheckRef(RefTypeId type, uintptr_t addr) const {
    return ref_.count(RefKey(type, addr)) != 0;
  }

  // --- generic ------------------------------------------------------------
  void Grant(const Capability& cap);
  bool Check(const Capability& cap) const;
  // Revokes `cap` (range-overlap semantics for WRITE); returns true if held.
  bool Revoke(const Capability& cap);

  void Clear();

  size_t write_count() const;
  size_t call_count() const { return call_.size(); }
  size_t ref_count() const { return ref_.size(); }

 private:
  struct WriteRange {
    uintptr_t addr;
    size_t size;
    bool operator==(const WriteRange& o) const { return addr == o.addr && size == o.size; }
  };

  static uint64_t RefKey(RefTypeId type, uintptr_t addr) {
    return HashCombine(type, static_cast<uint64_t>(addr));
  }

  static uintptr_t BucketOf(uintptr_t addr) { return addr >> kBucketShift; }

  // bucket -> ranges that intersect the bucket's 4 KiB span.
  std::unordered_map<uintptr_t, std::vector<WriteRange>> write_buckets_;
  std::unordered_set<uintptr_t> call_;
  std::unordered_set<uint64_t> ref_;
};

}  // namespace lxfi
