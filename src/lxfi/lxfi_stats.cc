#include "src/lxfi/lxfi_stats.h"

#include <algorithm>

#include "src/base/string_util.h"
#include "src/base/trace.h"
#include "src/lxfi/containment.h"
#include "src/lxfi/principal.h"
#include "src/lxfi/runtime.h"

namespace lxfi {

std::vector<LxfiStats::PrincipalMetrics> LxfiStats::Collect(const Runtime& rt) {
  std::vector<PrincipalMetrics> out;
  rt.VisitPrincipals([&out](Principal* p) {
    PrincipalMetrics m;
    m.name = p->DebugName();
    m.id = p->trace_id();
    for (int shard = 0; shard < kMaxCpuShards; ++shard) {
      // const_cast-free: ctx(shard) is the non-const accessor, but the walk
      // only reads RelaxedCells (race-free single-writer counters).
      EnforcementContext& ec = p->ctx(shard);
      m.crossings += ec.crossings.value();
      m.crossing_ns += ec.crossing_ns.value();
      for (size_t b = 0; b < EnforcementContext::kCrossingHistBuckets; ++b) {
        m.hist[b] += ec.crossing_hist[b].value();
      }
      m.write_checks += ec.write_checks.value();
      m.write_memo_hits += ec.write_memo_hits.value();
      m.arena_span_hits += ec.arena_span_hits.value();
      m.call_checks += ec.call_checks.value();
      m.call_memo_hits += ec.call_memo_hits.value();
      m.pre_checks += ec.pre_checks.value();
      m.pre_memo_hits += ec.pre_memo_hits.value();
    }
    m.arena_fallbacks = p->arena_fallbacks();
    out.push_back(std::move(m));
  });
  // Deterministic order for golden output and stable JSON artifacts.
  std::sort(out.begin(), out.end(),
            [](const PrincipalMetrics& a, const PrincipalMetrics& b) { return a.name < b.name; });
  return out;
}

namespace {

// Minimal JSON string escape (principal names are module names + hex, but
// stay safe against anything a test throws at them).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

void AppendField(std::string* out, const char* key, uint64_t value, bool* first) {
  *out += StrFormat("%s\"%s\": %llu", *first ? "" : ", ", key,
                    static_cast<unsigned long long>(value));
  *first = false;
}

}  // namespace

std::string LxfiStats::DumpJson(const Runtime& rt, const std::string& tag) {
  // Same shape as bench/json_out.h ({"bench": ..., "results": [rows]}) so
  // --stats artifacts merge into bench_results.json beside throughput rows.
  std::string out = StrFormat("{\n  \"bench\": \"%s\",\n  \"results\": [", JsonEscape(tag).c_str());
  bool first_row = true;
  auto open_row = [&out, &first_row](const std::string& name) {
    out += StrFormat("%s\n    {\"name\": \"%s\"", first_row ? "" : ",",
                     JsonEscape(name).c_str());
    first_row = false;
  };
  for (const PrincipalMetrics& m : Collect(rt)) {
    open_row("principal:" + m.name);
    bool first = false;  // "name" already emitted
    AppendField(&out, "id", m.id, &first);
    AppendField(&out, "crossings", m.crossings, &first);
    AppendField(&out, "crossing_ns", m.crossing_ns, &first);
    AppendField(&out, "write_checks", m.write_checks, &first);
    AppendField(&out, "write_memo_hits", m.write_memo_hits, &first);
    AppendField(&out, "arena_span_hits", m.arena_span_hits, &first);
    AppendField(&out, "call_checks", m.call_checks, &first);
    AppendField(&out, "call_memo_hits", m.call_memo_hits, &first);
    AppendField(&out, "pre_checks", m.pre_checks, &first);
    AppendField(&out, "pre_memo_hits", m.pre_memo_hits, &first);
    AppendField(&out, "arena_fallbacks", m.arena_fallbacks, &first);
    for (size_t b = 0; b < EnforcementContext::kCrossingHistBuckets; ++b) {
      if (m.hist[b] != 0) {
        AppendField(&out, StrFormat("hist_2e%zu_ns", b).c_str(), m.hist[b], &first);
      }
    }
    out += "}";
  }
  const GuardStats& guards = rt.guards();
  for (int i = 0; i < static_cast<int>(GuardType::kCount); ++i) {
    auto t = static_cast<GuardType>(i);
    open_row(std::string("guard:") + GuardTypeName(t));
    bool first = false;
    AppendField(&out, "count", guards.count(t), &first);
    AppendField(&out, "time_ns", guards.time_ns(t), &first);
    out += "}";
  }
  open_row("trace");
  bool first = false;
  AppendField(&out, "enabled", TraceBuffer::EnabledRelaxed() ? 1 : 0, &first);
  AppendField(&out, "drops", TraceBuffer::Global().TotalDrops(), &first);
  AppendField(&out, "violations", rt.violation_count(), &first);
  out += "}";
  if (const Containment* c = rt.containment(); c != nullptr) {
    open_row("containment");
    bool cf = false;
    AppendField(&out, "quarantines", c->quarantines(), &cf);
    AppendField(&out, "reboots", c->reboots(), &cf);
    AppendField(&out, "retired", c->retired(), &cf);
    AppendField(&out, "backoff_ns", c->backoff_ns(), &cf);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace lxfi
