// Recursive-descent parser for the annotation grammar of Figure 2.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/lxfi/annotation.h"

namespace lxfi {

// Parses `text` into an AnnotationSet for a function with the given
// parameter names. On error returns nullptr and fills *error.
std::unique_ptr<AnnotationSet> ParseAnnotations(const std::string& name,
                                                const std::vector<std::string>& params,
                                                const std::string& text, std::string* error);

}  // namespace lxfi
