#include "src/lxfi/runtime.h"

#include <pthread.h>

#include <algorithm>

#include "src/base/clock.h"
#include "src/base/compiler.h"
#include "src/base/log.h"
#include "src/base/string_util.h"
#include "src/base/trace.h"
#include "src/kernel/panic.h"
#include "src/lxfi/containment.h"
#include "src/lxfi/guard_program.h"
#include "src/lxfi/lxfi_stats.h"

namespace lxfi {

namespace {
// Attribution key for trace records: minted principal id, 0 for the trusted
// kernel (no principal).
uint32_t TraceIdOf(const Principal* p) { return p != nullptr ? p->trace_id() : 0; }
}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kWrite:
      return "write-violation";
    case ViolationKind::kCall:
      return "call-violation";
    case ViolationKind::kRef:
      return "ref-violation";
    case ViolationKind::kCapCheck:
      return "cap-check-violation";
    case ViolationKind::kIndirectCall:
      return "indirect-call-violation";
    case ViolationKind::kAnnotationMismatch:
      return "annotation-mismatch";
    case ViolationKind::kShadowStack:
      return "shadow-stack-violation";
    case ViolationKind::kPrincipal:
      return "principal-violation";
  }
  return "?";
}

const char* GuardTypeName(GuardType type) {
  switch (type) {
    case GuardType::kAnnotationAction:
      return "annotation-action";
    case GuardType::kFunctionEntry:
      return "function-entry";
    case GuardType::kFunctionExit:
      return "function-exit";
    case GuardType::kMemWrite:
      return "mem-write-check";
    case GuardType::kIndCallAll:
      return "kernel-indcall-all";
    case GuardType::kIndCallFull:
      return "kernel-indcall-full";
    case GuardType::kIndCallModule:
      return "kernel-indcall-module";
    case GuardType::kCount:
      break;
  }
  return "?";
}

std::string GuardStats::Report() const {
  std::string out;
  for (int i = 0; i < static_cast<int>(GuardType::kCount); ++i) {
    auto t = static_cast<GuardType>(i);
    out += StrFormat("%-20s count=%12llu mean=%8.1f ns total=%10.3f ms\n", GuardTypeName(t),
                     static_cast<unsigned long long>(count(t)), MeanNs(t),
                     static_cast<double>(time_ns(t)) / 1e6);
  }
  return out;
}

Runtime::Runtime(kern::Kernel* kernel, RuntimeOptions options)
    : kernel_(kernel), options_(options) {
  guards_.timing_enabled = options_.guard_timing;
  if (options_.concurrent_enforcement) {
    writer_set_.EnableConcurrent(&EpochReclaimer::Global());
  }
  if (options_.partitioned_heaps) {
    EnablePartitionedHeaps();
  }
  // The registration-time compile pass resolves iterator-func names against
  // this runtime's iterator registry.
  annotations_.BindIterators(&iterators_);
  // Locate the current thread's stack: it stands in for the kernel stack the
  // paper grants every module WRITE access to (§3.2).
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    size_t stack_size = 0;
    if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
      stack_lo_ = reinterpret_cast<uintptr_t>(stack_addr);
      stack_hi_ = stack_lo_ + stack_size;
    }
    pthread_attr_destroy(&attr);
  }
  kernel_->set_isolation(this);
}

Runtime::~Runtime() {
  // Drop the cached shadow-stack pointers so a later Runtime on the same
  // kernel cannot observe pointers into this one's freed shadow map. Only
  // safe while we are still the kernel's isolation: once replaced, kthread
  // lifecycle events stopped reaching us, so keys in shadows_ may name
  // contexts that were since destroyed.
  if (kernel_->isolation() == this) {
    for (auto& [ctx, shadow] : shadows_) {
      if (ctx->lxfi_shadow == shadow.get()) {
        ctx->lxfi_shadow = nullptr;
      }
    }
    kernel_->set_isolation(nullptr);
  }
}

// --- module lifecycle -------------------------------------------------------

bool Runtime::OnModuleLoad(kern::Module* module) {
  auto ctx = std::make_unique<ModuleCtx>(this, module);
  ModuleCtx* mc = ctx.get();
  if (options_.concurrent_enforcement) {
    mc->EnableConcurrent(&EpochReclaimer::Global());
  }
  {
    SpinGuard guard(ctxs_mu_);
    ctxs_[module] = std::move(ctx);
  }
  module->lxfi_ctx = mc;
  Principal* shared = mc->shared();

  // Initial CALL capabilities: one per imported kernel symbol (§3.2). The
  // safe default applies — importing an unannotated kernel function fails
  // the load, since LXFI could not enforce any contract on it.
  for (const std::string& name : module->def().imports) {
    uintptr_t addr = kernel_->symtab().Find(name);
    if (addr == 0) {
      LXFI_LOG_ERROR("module %s imports unknown symbol %s", module->name().c_str(), name.c_str());
      return false;
    }
    if (annotations_.Find(name) == nullptr) {
      LXFI_LOG_ERROR("module %s imports unannotated kernel function %s (safe default: refuse)",
                     module->name().c_str(), name.c_str());
      return false;
    }
    shared->caps().GrantCall(addr);
    annotations_.NoteUse(name, module->name());
  }

  // Module-defined functions: propagate annotations from the declared
  // function-pointer type, verify multi-source consistency, and register the
  // instrumented wrapper under a minted module-text address (§4.2).
  for (const kern::FuncDecl& fd : module->def().functions) {
    const AnnotationSet* type_set = annotations_.Find(fd.type_name);
    const AnnotationSet* fn_set = annotations_.Find(fd.name);
    if (type_set != nullptr && fn_set != nullptr && type_set->ahash != fn_set->ahash) {
      LXFI_LOG_ERROR("module %s: function %s obtains conflicting annotations from %s",
                     module->name().c_str(), fd.name.c_str(), fd.type_name.c_str());
      return false;
    }
    const AnnotationSet* set = type_set != nullptr ? type_set : fn_set;
    const auto* factory = std::any_cast<WrapFactory>(&fd.wrapper_factory);
    if (factory == nullptr) {
      LXFI_LOG_ERROR("module %s: function %s was not processed by the module rewriter",
                     module->name().c_str(), fd.name.c_str());
      return false;
    }
    std::any wrapped = (*factory)(this, mc, set, fd.name);
    uintptr_t addr = kernel_->funcs().RegisterAny(kern::TextKind::kModuleText,
                                                  module->name() + "." + fd.name, std::move(wrapped),
                                                  set != nullptr ? set->ahash : 0, module);
    module->SetFuncAddr(fd.name, addr);
    shared->caps().GrantCall(addr);
    if (type_set != nullptr) {
      annotations_.NoteUse(fd.type_name, module->name());
    }
  }

  // Initial WRITE capabilities: writable sections (and the simulated user
  // window, standing in for the current process's user memory that modules
  // may legitimately target through checked uaccess helpers). The shared
  // principal also lands in the writer set for every writable section, since
  // those sections may contain function pointers the kernel will call (§5).
  if (module->data() != nullptr) {
    Grant(shared, Capability::Write(module->data(), module->data_size()));
  }
  Grant(shared, Capability::Write(uintptr_t{0}, kern::kUserSpaceTop));
  TRACE_EVENT(TraceEvent::kModuleLoad, shared->trace_id(), module->def().imports.size(),
              module->def().functions.size());
  return true;
}

void Runtime::OnModuleUnload(kern::Module* module) {
  std::unique_ptr<ModuleCtx> owned;
  {
    SpinGuard guard(ctxs_mu_);
    auto it = ctxs_.find(module);
    if (it == ctxs_.end()) {
      return;
    }
    owned = std::move(it->second);
    ctxs_.erase(it);
  }
  ModuleCtx* mc = owned.get();
  // By now the module is unpublished from every dispatch surface a walker
  // could take a *new* reference through (exit_fn dropped its filters from
  // the chain snapshots before we got here). Readers that already hold an
  // old snapshot may still be mid-crossing through the module's wrappers,
  // so wait out a grace period before unregistering its text and tearing
  // down its principals — the synchronize_rcu() in real module unload.
  if (options_.concurrent_enforcement) {
    EpochReclaimer::Global().Synchronize();
  }
  // Unregister module text so stale function pointers fault rather than run.
  for (const kern::FuncDecl& fd : module->def().functions) {
    uintptr_t addr = module->FuncAddr(fd.name);
    if (addr != 0) {
      kernel_->funcs().Unregister(addr);
    }
  }
  // Bulk arena teardown: one writer-set range clear plus one slab sweep per
  // partition the module's principals ever owned — batched at arena-chunk
  // granularity, never a per-object revoke storm (the capability tables die
  // wholesale with the principals below).
  auto partitions = mc->TakeHeapPartitions();
  for (const auto& rec : partitions) {
    writer_set_.ClearRange(rec.lo, rec.hi - rec.lo);
    kernel_->slab().TeardownPartition(rec.id);
  }
  TRACE_EVENT(TraceEvent::kModuleUnload, mc->shared()->trace_id(), mc->instances().size(),
              partitions.size());
  // Drop writer attribution for the module's principals. (A real kernel
  // would also have to treat still-reachable module-written pointers as
  // poisoned; unloading with live references is already a bug upstream.)
  writer_set_.RemoveWriter(mc->shared());
  writer_set_.RemoveWriter(mc->global());
  for (const auto& inst : mc->instances()) {
    writer_set_.RemoveWriter(inst.get());
  }
  module->lxfi_ctx = nullptr;
}

int Runtime::CallModuleInit(kern::Module* module, const std::function<int()>& init) {
  ModuleCtx* mc = CtxOf(module);
  uint64_t token = WrapperEnter(mc->shared(), "module_init");
  int rc;
  try {
    rc = init();
  } catch (...) {
    WrapperExit(token, "module_init");
    throw;
  }
  WrapperExit(token, "module_init");
  return rc;
}

void Runtime::CallModuleExit(kern::Module* module, const std::function<void()>& exit_fn) {
  ModuleCtx* mc = CtxOf(module);
  uint64_t token = WrapperEnter(mc->shared(), "module_exit");
  try {
    exit_fn();
  } catch (...) {
    WrapperExit(token, "module_exit");
    throw;
  }
  WrapperExit(token, "module_exit");
}

ModuleCtx* Runtime::CtxOf(kern::Module* module) {
  SpinGuard guard(ctxs_mu_);
  auto it = ctxs_.find(module);
  return it == ctxs_.end() ? nullptr : it->second.get();
}

// --- thread / interrupt context ----------------------------------------------

ShadowStack* Runtime::CurrentShadow() {
  kern::KthreadContext* ctx = kernel_->current();
  // The kthread context caches its shadow stack; every enforcement check
  // starts here, so the common case must not pay a map lookup (or a lock:
  // lxfi_shadow is only dereferenced by the CPU the kthread runs on — see
  // kthread.h on migration). The owner tag rejects a stack cached by a
  // different Runtime on the same kernel.
  if (LXFI_LIKELY(ctx->lxfi_shadow != nullptr)) {
    auto* shadow = static_cast<ShadowStack*>(ctx->lxfi_shadow);
    if (LXFI_LIKELY(shadow->owner == this)) {
      return shadow;
    }
  }
  SpinGuard guard(shadows_mu_);
  auto it = shadows_.find(ctx);
  if (it == shadows_.end()) {
    it = shadows_.emplace(ctx, std::make_unique<ShadowStack>()).first;
    it->second->owner = this;
  }
  ctx->lxfi_shadow = it->second.get();
  return it->second.get();
}

Principal* Runtime::CurrentPrincipal() { return CurrentShadow()->current; }

Principal* Runtime::CallerPrincipal() {
  ShadowStack* shadow = CurrentShadow();
  if (shadow->current != nullptr) {
    return shadow->current;
  }
  // Inside a module->kernel wrapper the FrameGuard already switched to
  // kernel privilege; the module caller sits in the saved frame.
  return shadow->TopSavedPrincipal();
}

// --- partitioned heaps --------------------------------------------------------

void Runtime::EnablePartitionedHeaps(size_t region_bytes, size_t slot_bytes, uint64_t seed) {
  options_.partitioned_heaps = true;
  kernel_->slab().EnablePartitions(region_bytes, slot_bytes, seed);
}

void* Runtime::PartitionedAlloc(size_t size) {
  kern::SlabAllocator& slab = kernel_->slab();
  if (!options_.partitioned_heaps || !slab.partitions_enabled()) {
    return slab.Alloc(size);
  }
  Principal* caller = CallerPrincipal();
  if (caller == nullptr) {
    return slab.Alloc(size);  // trusted context: shared heap, as before
  }
  if (caller->arena_sealed()) {
    return nullptr;  // quarantined principals get no fresh memory
  }
  int pid = caller->heap_partition();
  if (pid == Principal::kNoHeap) {
    // First allocation by this principal: carve its slot and publish the
    // span. A failed carve (all slots taken) degrades to the shared heap
    // with per-object capabilities, exactly the pre-partition behavior.
    pid = slab.CreatePartition();
    if (pid != kern::SlabAllocator::kNoPartition) {
      uintptr_t lo = 0, hi = 0;
      slab.PartitionSpan(pid, &lo, &hi);
      caller->PublishArena(pid, lo, hi);
      caller->module()->RecordHeapPartition(pid, lo, hi);
    }
  }
  void* obj =
      pid == kern::SlabAllocator::kNoPartition ? slab.Alloc(size) : slab.AllocIn(pid, size);
  // Shared-heap fallback (no slot free, or the slot's pages exhausted):
  // each such object sits outside the arena span the bulk sweep and the
  // quarantine seal cover, so record it — containment revokes exactly this
  // list — and trace it, since every fallback weakens the range-compare
  // isolation the partition was supposed to provide.
  if (obj != nullptr &&
      !caller->ArenaContains(reinterpret_cast<uintptr_t>(obj), size > 0 ? size : 1)) {
    caller->NoteArenaFallback();
    caller->module()->RecordArenaFallback(caller, reinterpret_cast<uintptr_t>(obj), size);
    TRACE_EVENT(TraceEvent::kArenaFallback, caller->trace_id(),
                reinterpret_cast<uint64_t>(obj), static_cast<uint64_t>(size));
  }
  return obj;
}

void Runtime::SealPrincipalHeap(Principal* p) {
  if (p == nullptr) {
    return;
  }
  p->SealArena();
  if (p->heap_partition() != Principal::kNoHeap) {
    kernel_->slab().SealPartition(p->heap_partition());
  }
  // Memoized allows covering the span (and pre-check memos) die here; the
  // span check itself runs before the memo, so the fast path is already
  // closed on every CPU that observes the seal.
  RevocationEpoch::Bump();
  TRACE_EVENT(TraceEvent::kHeapSeal, p->trace_id(), p->arena_lo(), p->arena_hi());
}

void Runtime::OnKthreadCreate(kern::KthreadContext* ctx) {
  SpinGuard guard(shadows_mu_);
  if (shadows_.count(ctx) == 0) {
    auto shadow = std::make_unique<ShadowStack>();
    shadow->owner = this;
    ctx->lxfi_shadow = shadow.get();
    shadows_[ctx] = std::move(shadow);
  }
}

void Runtime::OnKthreadDestroy(kern::KthreadContext* ctx) {
  SpinGuard guard(shadows_mu_);
  shadows_.erase(ctx);
  ctx->lxfi_shadow = nullptr;
}

void Runtime::OnInterruptEnter(kern::KthreadContext* ctx) {
  // Save the interrupted principal on the shadow stack and run the handler
  // with kernel privilege until a wrapper switches again (§3.1).
  ShadowStack* shadow = CurrentShadow();
  uint64_t token = shadow->Push(shadow->current, "irq");
  shadow->irq_tokens.push_back(token);
  shadow->current = nullptr;
}

void Runtime::OnInterruptExit(kern::KthreadContext* ctx) {
  ShadowStack* shadow = CurrentShadow();
  if (shadow->irq_tokens.empty()) {
    RaiseViolation(ViolationKind::kShadowStack, "interrupt exit without matching entry");
    return;
  }
  uint64_t token = shadow->irq_tokens.back();
  shadow->irq_tokens.pop_back();
  bool ok = false;
  Principal* saved = shadow->Pop(token, &ok);
  if (!ok) {
    RaiseViolation(ViolationKind::kShadowStack, "shadow stack corrupted across interrupt");
    return;
  }
  shadow->current = saved;
}

// --- capability operations ----------------------------------------------------

void Runtime::Grant(Principal* p, const Capability& cap) {
  TRACE_EVENT(TraceEvent::kCapGrant, p->trace_id(), cap.addr,
              static_cast<uint64_t>(cap.size) | (static_cast<uint64_t>(cap.kind) << 56));
  if (LXFI_UNLIKELY(options_.concurrent_enforcement)) {
    // Mutate the table under the principal's lock, and record writer pages
    // against the principal's private page set while we hold it: steady
    // per-packet grants (skb transfers re-granting slab pages seen before)
    // then never touch the global writer-set lock.
    constexpr size_t kMaxInlinePages = 64;
    uint64_t new_pages[kMaxInlinePages];
    size_t n_new = 0;
    bool huge_range = false;
    // Kernel-stack ranges are never writer-recorded: stack write authority is
    // the transient §3.2 initial capability (OwnsForEnforcement allows it
    // with no cap at all), while the writer set is monotone and stack frames
    // recycle. Recording an out-param grant here would permanently mark a
    // frame page and poison later kernel dispatch through stack slots (e.g.
    // the page cache's stack writeback bio).
    bool on_stack = cap.kind == CapKind::kWrite && cap.size > 0 &&
                    OnKernelStack(cap.addr, cap.size);
    {
      SpinGuard guard(p->lock());
      p->caps().Grant(cap);
      if (cap.kind == CapKind::kWrite && cap.size > 0 && !on_stack) {
        // A ClearRange/RemoveWriter since we last recorded invalidates every
        // record: re-attribute from scratch so erased pages get re-inserted.
        uint64_t gen = writer_set_.clear_generation();
        if (gen != p->writer_pages_gen()) {
          p->writer_pages().Clear();
          p->set_writer_pages_gen(gen);
        }
        uintptr_t first = cap.addr >> WriterSet::kPageShift;
        uintptr_t last = (cap.addr + cap.size - 1) >> WriterSet::kPageShift;
        if (last - first >= kMaxInlinePages) {
          huge_range = true;  // module-lifetime grant (e.g. the user window)
        } else {
          for (uintptr_t page = first; page <= last; ++page) {
            if (p->writer_pages().Insert(page)) {
              new_pages[n_new++] = page;
            }
          }
        }
      }
    }
    if (huge_range) {
      writer_set_.AddRange(p, cap.addr, cap.size);
    } else if (n_new > 0) {
      writer_set_.AddPages(p, new_pages, n_new);
    }
    return;
  }
  p->caps().Grant(cap);
  if (cap.kind == CapKind::kWrite && !OnKernelStack(cap.addr, cap.size)) {
    writer_set_.AddRange(p, cap.addr, cap.size);
  }
}

bool Runtime::Owns(Principal* p, const Capability& cap) const {
  if (LXFI_UNLIKELY(options_.concurrent_enforcement)) {
    return p->module()->OwnsConcurrent(p, cap);
  }
  return p->module()->Owns(p, cap);
}

void Runtime::RevokeEverywhere(const Capability& cap) {
  TRACE_EVENT(TraceEvent::kCapRevoke, 0, cap.addr,
              static_cast<uint64_t>(cap.size) | (static_cast<uint64_t>(cap.kind) << 56));
  revoke_everywhere_count_.fetch_add(1, std::memory_order_relaxed);
  SpinGuard guard(ctxs_mu_);
  for (auto& [kmod, mc] : ctxs_) {
    mc->RevokeEverywhere(cap);
  }
}

// --- instrumentation checks -----------------------------------------------------

void Runtime::CheckWrite(const void* dst, size_t size) {
  Principal* p = CurrentPrincipal();
  if (p == nullptr) {
    return;  // trusted (core kernel) context
  }
  uintptr_t addr = reinterpret_cast<uintptr_t>(dst);
  if (LXFI_UNLIKELY(guards_.timing_enabled)) {
    GuardScope<true> guard(&guards_, GuardType::kMemWrite);
    CheckWriteBody(p, addr, size);
    return;
  }
  GuardScope<false> guard(&guards_, GuardType::kMemWrite);
  CheckWriteBody(p, addr, size);
}

// The two halves of the write-memo protocol, kept in exactly one place each
// so the store guard (CheckWriteBody, which wedges the kernel-stack test
// between them) and OwnsWriteFast (LxfiCheck, no stack grant) cannot drift.
LXFI_ALWAYS_INLINE bool Runtime::WriteMemoProbe(EnforcementContext& ec, uintptr_t addr,
                                                size_t size) {
  ++ec.write_checks;
  // Fast path: the last granted range that satisfied a check for this
  // principal (memset / field-by-field store pattern). Three compares
  // against the context the CurrentPrincipal() load already touched.
  if (LXFI_LIKELY(options_.enforcement_memo && ec.WriteMemoHit(addr, size))) {
    ++ec.write_memo_hits;
    return true;
  }
  return false;
}

LXFI_ALWAYS_INLINE bool Runtime::WriteTableProbe(Principal* p, EnforcementContext& ec,
                                                 uintptr_t addr, size_t size) {
  // Epoch before the probe: if a revoke interleaves, the memo is filled
  // already stale instead of outliving the revoke (see enforcement_context.h).
  uint64_t epoch = RevocationEpoch::Current();
  uintptr_t lo, hi;
  bool owned = LXFI_UNLIKELY(options_.concurrent_enforcement)
                   ? p->module()->OwnsWriteConcurrent(p, addr, size, &lo, &hi)
                   : p->module()->OwnsWrite(p, addr, size, &lo, &hi);
  if (!owned) {
    return false;
  }
  if (options_.enforcement_memo) {
    ec.FillWriteMemo(lo, hi, epoch);
  }
  return true;
}

void Runtime::CheckWriteBody(Principal* p, uintptr_t addr, size_t size) {
  EnforcementContext& ec = p->ctx();
  // Partitioned-heap fast path: the overwhelmingly common store — a module
  // writing memory it kmalloc'd itself — resolves on the principal's own
  // span before the memo and any table probe. Two relaxed loads and a
  // flag-combining compare chain; when partitions are off both bounds sit
  // at their at-rest sentinels and the first compare falls through. Sealing
  // turns the same compare into an immediate violation attributed to the
  // sealed principal: its own heap fails closed without consulting the
  // table (which may still hold per-object grants).
  if (p->ArenaContains(addr, size)) {
    ++ec.write_checks;
    if (LXFI_LIKELY(!p->arena_sealed())) {
      ++ec.arena_span_hits;
      return;
    }
    RaiseViolation(ViolationKind::kWrite,
                   StrFormat("%s attempted %zu-byte store to %p in its sealed heap partition",
                             p->DebugName().c_str(), size, reinterpret_cast<void*>(addr)),
                   addr);
    return;
  }
  if (WriteMemoProbe(ec, addr, size)) {
    return;
  }
  // §3.2 initial capability (2): the current kernel stack is always
  // module-writable. Two compares; no memo (the table path below would
  // otherwise never warm up for heap objects).
  if (OnKernelStack(addr, size)) {
    return;
  }
  if (LXFI_LIKELY(WriteTableProbe(p, ec, addr, size))) {
    return;
  }
  RaiseViolation(ViolationKind::kWrite,
                 StrFormat("%s attempted %zu-byte store to %p without WRITE capability",
                           p->DebugName().c_str(), size, reinterpret_cast<void*>(addr)),
                 addr);
}

bool Runtime::OwnsWriteFast(Principal* p, uintptr_t addr, size_t size) {
  // Same ordering as the store guard: span (sealed fails closed, before the
  // memo can resurrect a stale allow), then memo, then tables.
  if (p->ArenaContains(addr, size)) {
    return !p->arena_sealed();
  }
  EnforcementContext& ec = p->ctx();
  return WriteMemoProbe(ec, addr, size) || WriteTableProbe(p, ec, addr, size);
}

bool Runtime::OwnsCallFast(Principal* p, uintptr_t target) {
  EnforcementContext& ec = p->ctx();
  ++ec.call_checks;
  if (options_.enforcement_memo && ec.CallMemoHit(target)) {
    ++ec.call_memo_hits;
    return true;
  }
  uint64_t epoch = RevocationEpoch::Current();
  bool owned = LXFI_UNLIKELY(options_.concurrent_enforcement)
                   ? p->module()->OwnsCallConcurrent(p, target)
                   : p->module()->OwnsCall(p, target);
  if (!owned) {
    return false;
  }
  if (options_.enforcement_memo) {
    ec.FillCallMemo(target, epoch);
  }
  return true;
}

void Runtime::CheckCall(Principal* p, uintptr_t target, const std::string& name) {
  if (p == nullptr) {
    return;
  }
  if (!OwnsCallFast(p, target)) {
    RaiseViolation(ViolationKind::kCall,
                   StrFormat("%s has no CALL capability for %s (%#llx)", p->DebugName().c_str(),
                             name.c_str(), static_cast<unsigned long long>(target)),
                   target);
  }
}

void Runtime::CollectWritersFromCaps(uintptr_t slot_addr, WriterVec* out) {
  // Ablation mode: recompute from capability tables every time.
  SpinGuard guard(ctxs_mu_);
  for (auto& [kmod, mc] : ctxs_) {
    auto consider = [&](Principal* p) {
      if (p->caps().CheckWrite(slot_addr, sizeof(uintptr_t))) {
        out->push_back(p);
      }
    };
    consider(mc->shared());
    consider(mc->global());
    for (const auto& inst : mc->instances()) {
      consider(inst.get());
    }
  }
}

void Runtime::CheckKernelIndirectCall(const void* pptr, const char* fnptr_type,
                                      uintptr_t target) {
  if (LXFI_UNLIKELY(guards_.timing_enabled)) {
    GuardScope<true> guard(&guards_, GuardType::kIndCallAll);
    IndirectCallBody<true>(pptr, fnptr_type, target);
    return;
  }
  GuardScope<false> guard(&guards_, GuardType::kIndCallAll);
  IndirectCallBody<false>(pptr, fnptr_type, target);
}

template <bool kTimed>
void Runtime::IndirectCallBody(const void* pptr, const char* fnptr_type, uintptr_t target) {
  if (target >= kern::kModuleTextBase) {
    guards_.Count(GuardType::kIndCallModule);
  }
  uintptr_t slot = reinterpret_cast<uintptr_t>(pptr);
  const bool concurrent = options_.concurrent_enforcement;
  if (LXFI_LIKELY(options_.writer_set_tracking &&
                  (concurrent ? writer_set_.EmptyConcurrent(slot) : writer_set_.Empty(slot)))) {
    return;  // fast path: no principal could have written this slot
  }
  GuardScope<kTimed> full_guard(&guards_, GuardType::kIndCallFull);
  WriterVec scratch;
  const WriterVec* writers;
  if (options_.writer_set_tracking) {
    if (concurrent) {
      // The inline writer vector cannot be read lock-free; copy it out
      // under the writer-set lock (slow path only — ops-table slots).
      writer_set_.SnapshotWriters(slot, &scratch);
      writers = &scratch;
    } else {
      writers = &writer_set_.WritersFor(slot);
    }
  } else {
    CollectWritersFromCaps(slot, &scratch);
    writers = &scratch;
  }
  if (writers->empty()) {
    return;
  }
  // Every principal that could have written the slot must hold a CALL
  // capability for the stored target (§4.1).
  for (Principal* writer : *writers) {
    if (!OwnsCallFast(writer, target)) {
      RaiseViolation(
          ViolationKind::kIndirectCall,
          StrFormat("kernel indirect call through %p (type %s) to %#llx: writer %s lacks CALL",
                    pptr, fnptr_type, static_cast<unsigned long long>(target),
                    writer->DebugName().c_str()),
          target);
      return;
    }
  }
  // Annotation hashes of the pointer type and the invoked function must
  // match, so a module cannot launder a function through a pointer with
  // different (weaker) annotations. Kernel functions without annotations are
  // exempt (§7).
  const kern::DispatchEntry* entry = kernel_->funcs().Lookup(target);
  if (entry == nullptr) {
    RaiseViolation(ViolationKind::kIndirectCall,
                   StrFormat("kernel indirect call to unmapped address %#llx via %s",
                             static_cast<unsigned long long>(target), fnptr_type),
                   target);
    return;
  }
  uint64_t type_hash = annotations_.AhashOf(fnptr_type);
  if (entry->ahash != 0 || entry->kind == kern::TextKind::kModuleText) {
    if (entry->ahash != type_hash) {
      RaiseViolation(ViolationKind::kAnnotationMismatch,
                     StrFormat("function %s (ahash %#llx) invoked through pointer type %s "
                               "(ahash %#llx)",
                               entry->name.c_str(), static_cast<unsigned long long>(entry->ahash),
                               fnptr_type, static_cast<unsigned long long>(type_hash)),
                     target);
    }
  }
}

// --- module-facing runtime API ---------------------------------------------------

void Runtime::LxfiCheck(const Capability& cap) {
  Principal* p = CurrentPrincipal();
  if (p == nullptr) {
    return;
  }
  // WRITE and CALL route through the EnforcementContext memos; the memo only
  // ever caches table-backed (not stack) ranges, so semantics match Owns().
  bool ok;
  switch (cap.kind) {
    case CapKind::kWrite:
      ok = OwnsWriteFast(p, cap.addr, cap.size);
      break;
    case CapKind::kCall:
      ok = OwnsCallFast(p, cap.addr);
      break;
    default:
      ok = Owns(p, cap);
      break;
  }
  if (!ok) {
    RaiseViolation(ViolationKind::kCapCheck,
                   StrFormat("lxfi_check failed: %s does not own %s", p->DebugName().c_str(),
                             cap.ToString().c_str()),
                   cap.addr);
  }
}

void Runtime::PrincAlias(const void* existing, const void* alias) {
  Principal* p = CurrentPrincipal();
  if (p == nullptr) {
    RaiseViolation(ViolationKind::kPrincipal, "lxfi_princ_alias outside module context");
    return;
  }
  ModuleCtx* mc = p->module();
  if (!mc->Alias(reinterpret_cast<uintptr_t>(existing), reinterpret_cast<uintptr_t>(alias))) {
    RaiseViolation(ViolationKind::kPrincipal,
                   StrFormat("lxfi_princ_alias: %p names no principal in %s", existing,
                             mc->name().c_str()),
                   reinterpret_cast<uintptr_t>(existing));
    return;
  }
  TRACE_EVENT(TraceEvent::kPrincipalAlias, p->trace_id(), reinterpret_cast<uintptr_t>(existing),
              reinterpret_cast<uintptr_t>(alias));
}

Principal* Runtime::SwitchPrincipal(Principal* to) {
  ShadowStack* shadow = CurrentShadow();
  Principal* prev = shadow->current;
  if (prev != nullptr && to != nullptr && to->module() != prev->module()) {
    RaiseViolation(ViolationKind::kPrincipal,
                   StrFormat("principal switch across modules: %s -> %s",
                             prev->DebugName().c_str(), to->DebugName().c_str()));
    return prev;
  }
  shadow->current = to;
  return prev;
}

Principal* Runtime::GlobalOfCurrent() {
  Principal* p = CurrentPrincipal();
  if (p == nullptr) {
    RaiseViolation(ViolationKind::kPrincipal, "global-principal switch outside module context");
    return nullptr;
  }
  return p->module()->global();
}

Principal* Runtime::SharedOfCurrent() {
  Principal* p = CurrentPrincipal();
  if (p == nullptr) {
    RaiseViolation(ViolationKind::kPrincipal, "shared-principal switch outside module context");
    return nullptr;
  }
  return p->module()->shared();
}

Principal* Runtime::InstanceOfCurrent(const void* name) {
  Principal* p = CurrentPrincipal();
  if (p == nullptr) {
    RaiseViolation(ViolationKind::kPrincipal, "instance-principal switch outside module context");
    return nullptr;
  }
  return p->module()->GetOrCreate(reinterpret_cast<uintptr_t>(name));
}

void Runtime::DropPrincipal(kern::Module* module, const void* name) {
  ModuleCtx* mc = CtxOf(module);
  if (mc == nullptr) {
    return;
  }
  Principal* p = mc->Lookup(reinterpret_cast<uintptr_t>(name));
  if (p != nullptr) {
    // An instance that dies with an empty slot gives it straight back (one
    // range clear, one bulk sweep); a slot with live objects — the kernel
    // may still reference them — stays orphaned until module unload.
    int pid = p->heap_partition();
    if (pid != Principal::kNoHeap && kernel_->slab().partition_live_objects(pid) == 0) {
      writer_set_.ClearRange(p->arena_lo(), p->arena_hi() - p->arena_lo());
      kernel_->slab().TeardownPartition(pid);
      mc->ForgetHeapPartition(pid);
      p->ResetArena();
    }
    writer_set_.RemoveWriter(p);
    mc->DropInstance(reinterpret_cast<uintptr_t>(name));
  }
}

// --- diagnostics ----------------------------------------------------------------------

std::string Runtime::DumpState() const {
  SpinGuard guard(ctxs_mu_);
  std::string out;
  out += StrFormat("lxfi runtime: %zu module(s), %zu tracked writer page(s), %llu violation(s)\n",
                   ctxs_.size(), writer_set_.TrackedPages(),
                   static_cast<unsigned long long>(violation_count()));
  // Deterministic order (snapshot-testable): modules sorted by name,
  // principals as shared, global, then instances sorted by principal name.
  std::vector<ModuleCtx*> modules;
  modules.reserve(ctxs_.size());
  for (const auto& [kmod, mc] : ctxs_) {
    modules.push_back(mc.get());
  }
  std::sort(modules.begin(), modules.end(),
            [](const ModuleCtx* a, const ModuleCtx* b) { return a->name() < b->name(); });
  for (ModuleCtx* mc : modules) {
    out += StrFormat("module %s: %zu instance principal(s)\n", mc->name().c_str(),
                     mc->instances().size());
    auto describe = [&](const Principal* p) {
      out += StrFormat("  %-28s WRITE=%zu CALL=%zu REF=%zu\n", p->DebugName().c_str(),
                       p->caps().write_count(), p->caps().call_count(), p->caps().ref_count());
      if (p->has_arena()) {
        // Spans print as offsets from the partition region base, so golden
        // DumpState output reproduces across runs regardless of where the
        // OS mapped the arena.
        uintptr_t base = kernel_->slab().region_base();
        out += StrFormat("    heap partition: [+%#llx, +%#llx)%s\n",
                         static_cast<unsigned long long>(p->arena_lo() - base),
                         static_cast<unsigned long long>(p->arena_hi() - base),
                         p->arena_sealed() ? " sealed" : "");
      }
    };
    describe(mc->shared());
    describe(mc->global());
    std::vector<const Principal*> insts;
    insts.reserve(mc->instances().size());
    for (const auto& inst : mc->instances()) {
      insts.push_back(inst.get());
    }
    std::sort(insts.begin(), insts.end(),
              [](const Principal* a, const Principal* b) { return a->name() < b->name(); });
    for (const Principal* inst : insts) {
      describe(inst);
    }
  }
  return out;
}

// --- violations ---------------------------------------------------------------------

void Runtime::RaiseViolation(ViolationKind kind, const std::string& details,
                             uint64_t fault_addr) {
  // Attribute before anything else: the faulting principal is the current
  // one, or — inside a kernel-side import that already dropped privilege —
  // the caller whose frame the shadow stack saved. The innermost frame label
  // names the crossing the fault happened under.
  ShadowStack* shadow = CurrentShadow();
  Principal* p = shadow->current != nullptr ? shadow->current : shadow->TopSavedPrincipal();
  TRACE_EVENT(TraceEvent::kViolation, TraceIdOf(p), static_cast<uint64_t>(kind), fault_addr);
  {
    SpinGuard guard(violations_mu_);
    uint64_t seq = violation_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
    ViolationRecord& rec = violation_ring_[(seq - 1) % kViolationRingSize];
    rec.kind = kind;
    rec.details = details;
    rec.principal = p != nullptr ? p->DebugName() : "";
    rec.principal_id = TraceIdOf(p);
    rec.fault_addr = fault_addr;
    rec.crossing = shadow->TopWhat();
    rec.seq = seq;
  }
  LXFI_LOG_WARN("lxfi violation: %s: %s", ViolationKindName(kind), details.c_str());
  switch (options_.policy) {
    case ViolationPolicy::kThrow:
      throw LxfiViolation(kind, details);
    case ViolationPolicy::kPanic:
      kern::Panic(std::string("lxfi: ") + ViolationKindName(kind) + ": " + details);
    case ViolationPolicy::kCount:
      return;
    case ViolationPolicy::kQuarantine:
      // Contain the faulting principal's module (seal + revoke + drop from
      // dispatch, microreboot pending), then fail the in-flight request the
      // same way kThrow does — the wrappers' unwind paths restore principal
      // state, and the syscall surface reports the error.
      if (containment_ != nullptr) {
        containment_->OnViolation(p, kind, fault_addr);
      }
      throw LxfiViolation(kind, details);
  }
}

std::vector<ViolationRecord> Runtime::violations() const {
  SpinGuard guard(violations_mu_);
  uint64_t total = violation_seq_.load(std::memory_order_acquire);
  uint64_t cleared = violation_cleared_.load(std::memory_order_acquire);
  uint64_t lo = total > kViolationRingSize ? total - kViolationRingSize : 0;
  if (cleared > lo) {
    lo = cleared;
  }
  std::vector<ViolationRecord> out;
  out.reserve(total - lo);
  for (uint64_t s = lo; s < total; ++s) {
    const ViolationRecord& rec = violation_ring_[s % kViolationRingSize];
    if (rec.seq == s + 1) {  // slot may predate a wrap-around in flight
      out.push_back(rec);
    }
  }
  return out;
}

void Runtime::VisitPrincipals(const std::function<void(Principal*)>& fn) const {
  SpinGuard guard(ctxs_mu_);
  for (const auto& [kmod, mc] : ctxs_) {
    fn(mc->shared());
    fn(mc->global());
    for (const auto& inst : mc->instances()) {
      fn(inst.get());
    }
  }
}

// --- annotation-action evaluation ----------------------------------------------------
//
// Two execution engines share one action-application core (ApplyOneCap):
//
//   * the GuardProgram evaluator (ExecOps) — the production path, a tight
//     switch-loop over the flat IR compiled at registration time;
//   * the AST interpreter (InterpretActions/ApplyAction/EvalExpr) — the
//     fallback for uncompiled sets and the reference implementation the
//     differential property test pits against the compiled path.

// Applies one copy/transfer/check to one materialized capability. `from_module`
// says which side is granting: pre of module->kernel and post of
// kernel->module flow *from* the module; the opposite two flow from the
// (all-owning) kernel toward the module principal.
void Runtime::ApplyOneCap(Action::Op op, const Capability& cap, const CallEnv& env,
                          bool from_module) {
  GuardScopeDyn guard(&guards_, GuardType::kAnnotationAction);
  switch (op) {
    case Action::Op::kCheck:
      if (from_module && !OwnsForEnforcement(env.principal, cap)) {
        RaiseViolation(cap.kind == CapKind::kRef ? ViolationKind::kRef : ViolationKind::kCapCheck,
                       StrFormat("check failed in %s: %s does not own %s", env.what,
                                 env.principal->DebugName().c_str(), cap.ToString().c_str()),
                       cap.addr);
      }
      break;
    case Action::Op::kCopy:
      if (from_module) {
        if (!OwnsForEnforcement(env.principal, cap)) {
          RaiseViolation(ViolationKind::kCapCheck,
                         StrFormat("copy source check failed in %s: %s does not own %s", env.what,
                                   env.principal->DebugName().c_str(), cap.ToString().c_str()),
                         cap.addr);
        }
        // Copy toward the kernel: nothing to track, the kernel owns all.
      } else {
        Grant(env.principal, cap);
      }
      break;
    case Action::Op::kTransfer:
      TRACE_EVENT(TraceEvent::kCapTransfer, TraceIdOf(env.principal), cap.addr,
                  static_cast<uint64_t>(cap.size) | (static_cast<uint64_t>(cap.kind) << 56));
      if (from_module) {
        if (!OwnsForEnforcement(env.principal, cap)) {
          RaiseViolation(ViolationKind::kCapCheck,
                         StrFormat("transfer source check failed in %s: %s does not own %s",
                                   env.what, env.principal->DebugName().c_str(),
                                   cap.ToString().c_str()),
                         cap.addr);
        }
        RevokeEverywhere(cap);
      } else {
        RevokeEverywhere(cap);
        Grant(env.principal, cap);
      }
      break;
    case Action::Op::kIf:
      break;
  }
}

// --- compiled-path evaluator ---------------------------------------------------------

int64_t Runtime::ExecOps(const GuardProgram& prog, uint32_t pc, uint32_t end, const CallEnv& env,
                         bool post) {
  int64_t stack[GuardProgram::kMaxStack];
  size_t sp = 0;
  const GuardOp* ops = prog.ops().data();
  const int64_t* consts = prog.consts().data();
  const bool from_module = env.kernel_to_module == post;
  while (pc < end) {
    const GuardOp op = ops[pc];
    switch (op.op) {
      case GuardOpcode::kPushConst:
        stack[sp++] = consts[op.a];
        break;
      case GuardOpcode::kPushArg:
        stack[sp++] = op.a < env.nargs ? static_cast<int64_t>(env.args[op.a]) : 0;
        break;
      case GuardOpcode::kPushRet:
        stack[sp++] = static_cast<int64_t>(env.ret);
        break;
      case GuardOpcode::kNeg:
        stack[sp - 1] = -stack[sp - 1];
        break;
      case GuardOpcode::kAdd:
        --sp;
        stack[sp - 1] = stack[sp - 1] + stack[sp];
        break;
      case GuardOpcode::kSub:
        --sp;
        stack[sp - 1] = stack[sp - 1] - stack[sp];
        break;
      case GuardOpcode::kLt:
        --sp;
        stack[sp - 1] = stack[sp - 1] < stack[sp];
        break;
      case GuardOpcode::kGt:
        --sp;
        stack[sp - 1] = stack[sp - 1] > stack[sp];
        break;
      case GuardOpcode::kLe:
        --sp;
        stack[sp - 1] = stack[sp - 1] <= stack[sp];
        break;
      case GuardOpcode::kGe:
        --sp;
        stack[sp - 1] = stack[sp - 1] >= stack[sp];
        break;
      case GuardOpcode::kEq:
        --sp;
        stack[sp - 1] = stack[sp - 1] == stack[sp];
        break;
      case GuardOpcode::kNe:
        --sp;
        stack[sp - 1] = stack[sp - 1] != stack[sp];
        break;
      case GuardOpcode::kJumpIfZero:
        if (stack[--sp] == 0) {
          pc = op.a;
          continue;
        }
        break;
      case GuardOpcode::kActInline: {
        auto action = static_cast<Action::Op>(op.flags & GuardProgram::kActionMask);
        auto kind =
            static_cast<CapKind>((op.flags >> GuardProgram::kCapShift) & GuardProgram::kCapMask);
        size_t size = sizeof(uintptr_t);
        if ((op.flags & GuardProgram::kHasSize) != 0) {
          size = static_cast<size_t>(stack[--sp]);
        }
        auto addr = static_cast<uintptr_t>(stack[--sp]);
        Capability cap;
        switch (kind) {
          case CapKind::kWrite:
            cap = Capability::Write(addr, size);
            break;
          case CapKind::kCall:
            cap = Capability::Call(addr);
            break;
          case CapKind::kRef:
            cap = Capability::Ref(static_cast<RefTypeId>(consts[op.b]), addr);
            break;
        }
        ApplyOneCap(action, cap, env, from_module);
        break;
      }
      case GuardOpcode::kActIter: {
        auto action = static_cast<Action::Op>(op.flags & GuardProgram::kActionMask);
        auto arg = static_cast<uint64_t>(stack[--sp]);
        const CapIterator* fn = prog.IterFn(op.a, &iterators_);
        if (fn == nullptr) {
          RaiseViolation(ViolationKind::kCapCheck, "unknown capability iterator '" +
                                                       prog.IterName(op.a) + "' in " + env.what);
          break;
        }
        CapIterContext ctx(kernel_);
        (*fn)(ctx, arg);
        for (const Capability& cap : ctx.caps()) {
          ApplyOneCap(action, cap, env, from_module);
        }
        break;
      }
    }
    ++pc;
  }
  return sp > 0 ? stack[sp - 1] : 0;
}

void Runtime::ExecGuards(const GuardProgram& prog, CallEnv& env, bool post) {
  const uint32_t begin = post ? prog.pre_end() : 0;
  const uint32_t end = post ? prog.post_end() : prog.pre_end();
  if (begin == end) {
    return;
  }
  // Pure-check pre sections under the (program, args) memo: a clean pass
  // repeats until a revocation bumps the epoch, so the common back-to-back
  // crossing costs a handful of compares instead of guard evaluation. Only
  // the module->kernel direction participates: kernel->module pre checks are
  // no-ops (from_module is false), and a "clean" no-op pass must not seed
  // the memo a module->kernel crossing of the same program could then hit.
  if (!post && !env.kernel_to_module && prog.pre_memoizable() && options_.enforcement_memo &&
      env.principal != nullptr && env.nargs <= EnforcementContext::kPreMemoArgs) {
    EnforcementContext& ec = env.principal->ctx();
    ++ec.pre_checks;
    if (ec.PreMemoHit(&prog, env.args, env.nargs)) {
      ++ec.pre_memo_hits;
      return;
    }
    // Epoch before evaluation, violation sequence around it: a pass is
    // memoized only if it was clean and no revoke raced the checks.
    uint64_t epoch = RevocationEpoch::Current();
    uint64_t violations_before = violation_seq_.load(std::memory_order_relaxed);
    ExecOps(prog, begin, end, env, post);
    // Under the throwing policy a violation already unwound past us; under
    // the counting policy the sequence says whether the pass was clean.
    if (violation_seq_.load(std::memory_order_relaxed) == violations_before) {
      ec.FillPreMemo(&prog, env.args, env.nargs, epoch);
    }
    return;
  }
  ExecOps(prog, begin, end, env, post);
}

void Runtime::RunActions(const AnnotationSet* set, CallEnv& env, bool post) {
  if (set == nullptr) {
    return;
  }
  RunBound(BoundProgram(set), set, env, post);
}

Principal* Runtime::SelectCalleePrincipal(const GuardProgram* prog, const AnnotationSet* set,
                                          ModuleCtx* mc, const CallEnv& env) {
  if (prog != nullptr) {
    switch (prog->principal_kind()) {
      case GuardProgram::PrincipalKind::kNone:
      case GuardProgram::PrincipalKind::kShared:
        return mc->shared();
      case GuardProgram::PrincipalKind::kGlobal:
        return mc->global();
      case GuardProgram::PrincipalKind::kExpr: {
        auto name = static_cast<uintptr_t>(
            ExecOps(*prog, prog->post_end(), static_cast<uint32_t>(prog->ops().size()), env,
                    /*post=*/false));
        return mc->GetOrCreate(name);
      }
    }
  }
  return InterpretCalleePrincipal(set, mc, env);
}

Principal* Runtime::SelectCalleePrincipal(const AnnotationSet* set, ModuleCtx* mc,
                                          const CallEnv& env) {
  return SelectCalleePrincipal(BoundProgram(set), set, mc, env);
}

// --- AST interpreter -----------------------------------------------------------------

int64_t Runtime::EvalExpr(const Expr& expr, const CallEnv& env) const {
  switch (expr.kind) {
    case Expr::Kind::kInt:
      return expr.value;
    case Expr::Kind::kArg:
      if (expr.arg_index < 0 || static_cast<size_t>(expr.arg_index) >= env.nargs) {
        return 0;
      }
      return static_cast<int64_t>(env.args[expr.arg_index]);
    case Expr::Kind::kReturn:
      return static_cast<int64_t>(env.ret);
    case Expr::Kind::kNeg:
      return -EvalExpr(*expr.lhs, env);
    case Expr::Kind::kBinary: {
      int64_t a = EvalExpr(*expr.lhs, env);
      int64_t b = EvalExpr(*expr.rhs, env);
      if (expr.op == "+") {
        return a + b;
      }
      if (expr.op == "-") {
        return a - b;
      }
      if (expr.op == "<") {
        return a < b;
      }
      if (expr.op == ">") {
        return a > b;
      }
      if (expr.op == "<=") {
        return a <= b;
      }
      if (expr.op == ">=") {
        return a >= b;
      }
      if (expr.op == "==") {
        return a == b;
      }
      if (expr.op == "!=") {
        return a != b;
      }
      return 0;
    }
  }
  return 0;
}

void Runtime::ResolveCaps(const CapListSpec& spec, const CallEnv& env, bool post, CapVec* out) {
  if (spec.is_iterator) {
    const CapIterator* iter = iterators_.Find(spec.iterator_name);
    if (iter == nullptr) {
      RaiseViolation(ViolationKind::kCapCheck,
                     "unknown capability iterator '" + spec.iterator_name + "' in " + env.what);
      return;
    }
    CapIterContext ctx(kernel_);
    (*iter)(ctx, static_cast<uint64_t>(EvalExpr(*spec.iterator_arg, env)));
    for (const Capability& cap : ctx.caps()) {
      out->push_back(cap);
    }
    return;
  }
  auto addr = static_cast<uintptr_t>(EvalExpr(*spec.ptr, env));
  switch (spec.kind) {
    case CapKind::kWrite: {
      // Default size is one pointer-sized object (the paper defaults to
      // sizeof(*ptr); interface authors here spell sizes explicitly except
      // for pointer cells).
      size_t size = spec.size != nullptr ? static_cast<size_t>(EvalExpr(*spec.size, env))
                                         : sizeof(uintptr_t);
      out->push_back(Capability::Write(addr, size));
      break;
    }
    case CapKind::kCall:
      out->push_back(Capability::Call(addr));
      break;
    case CapKind::kRef:
      out->push_back(Capability::Ref(RefType(spec.ref_type_name), addr));
      break;
  }
}

void Runtime::ApplyAction(const Action& action, const CallEnv& env, bool post) {
  if (action.op == Action::Op::kIf) {
    if (EvalExpr(*action.cond, env) != 0) {
      ApplyAction(*action.then, env, post);
    }
    return;
  }
  CapVec caps;
  ResolveCaps(action.caps, env, post, &caps);
  bool from_module = env.kernel_to_module == post;
  for (const Capability& cap : caps) {
    ApplyOneCap(action.op, cap, env, from_module);
  }
}

void Runtime::InterpretActions(const AnnotationSet* set, CallEnv& env, bool post) {
  if (set == nullptr) {
    return;
  }
  Annotation::Kind want = post ? Annotation::Kind::kPost : Annotation::Kind::kPre;
  for (const Annotation& a : set->annotations) {
    if (a.kind == want && a.action != nullptr) {
      ApplyAction(*a.action, env, post);
    }
  }
}

Principal* Runtime::InterpretCalleePrincipal(const AnnotationSet* set, ModuleCtx* mc,
                                             const CallEnv& env) {
  if (set != nullptr) {
    for (const Annotation& a : set->annotations) {
      if (a.kind != Annotation::Kind::kPrincipal) {
        continue;
      }
      switch (a.principal_target) {
        case Annotation::PrincipalTarget::kGlobal:
          return mc->global();
        case Annotation::PrincipalTarget::kShared:
          return mc->shared();
        case Annotation::PrincipalTarget::kExpr: {
          auto name = static_cast<uintptr_t>(EvalExpr(*a.principal_expr, env));
          return mc->GetOrCreate(name);
        }
      }
    }
  }
  return mc->shared();
}

// --- wrapper entry/exit --------------------------------------------------------------

uint64_t Runtime::WrapperEnter(Principal* switch_to, const char* what) {
  auto body = [&] {
    ShadowStack* shadow = CurrentShadow();
    uint64_t token = shadow->Push(shadow->current, what);
    shadow->current = switch_to;
    // Per-principal crossing metrics are a static key, same as tracing: one
    // relaxed load when off, a frame timestamp when on (read back at exit).
    if (LXFI_UNLIKELY(LxfiStats::EnabledRelaxed())) {
      shadow->SetTopEnterNs(MonotonicNowNs());
    }
    TRACE_EVENT(TraceEvent::kGuardEnter,
                TraceIdOf(switch_to != nullptr ? switch_to : shadow->TopSavedPrincipal()), token,
                shadow->depth());
    return token;
  };
  if (LXFI_UNLIKELY(guards_.timing_enabled)) {
    GuardScope<true> guard(&guards_, GuardType::kFunctionEntry);
    return body();
  }
  GuardScope<false> guard(&guards_, GuardType::kFunctionEntry);
  return body();
}

void Runtime::WrapperExit(uint64_t token, const char* what) {
  auto body = [&] {
    ShadowStack* shadow = CurrentShadow();
    // Crossing attribution mirrors CallerPrincipal(): the module principal
    // still current (kernel->module call about to return), or the caller the
    // frame saved (module->kernel import whose wrapper dropped privilege).
    // The delta lands in the attributed principal's per-CPU shard — the one
    // the crossing's CALL check already pulled into cache.
    uint64_t crossing_ns = 0;
    if (LXFI_UNLIKELY(LxfiStats::EnabledRelaxed())) {
      uint64_t enter_ns = shadow->TopEnterNs();
      Principal* attributed =
          shadow->current != nullptr ? shadow->current : shadow->TopSavedPrincipal();
      if (enter_ns != 0 && attributed != nullptr) {
        crossing_ns = MonotonicNowNs() - enter_ns;
        attributed->ctx().CountCrossing(crossing_ns);
      }
    }
    bool ok = false;
    Principal* saved = shadow->Pop(token, &ok);
    if (!ok) {
      RaiseViolation(ViolationKind::kShadowStack,
                     StrFormat("return-path corruption detected leaving %s", what));
      return;
    }
    shadow->current = saved;
    TRACE_EVENT(TraceEvent::kGuardExit, TraceIdOf(saved), token, crossing_ns);
  };
  if (LXFI_UNLIKELY(guards_.timing_enabled)) {
    GuardScope<true> guard(&guards_, GuardType::kFunctionExit);
    body();
    return;
  }
  GuardScope<false> guard(&guards_, GuardType::kFunctionExit);
  body();
}

void Runtime::WrapperAbort(uint64_t token, const char* what) {
  // Unwind path: pop frames down to (and including) `token` without raising
  // nested violations while an exception is in flight.
  ShadowStack* shadow = CurrentShadow();
  while (shadow->depth() > 0) {
    bool ok = false;
    Principal* saved = shadow->PopAny(&ok, token);
    shadow->current = saved;
    if (ok) {
      return;
    }
  }
}

}  // namespace lxfi
