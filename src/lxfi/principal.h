// Principals and per-module principal state (§3.1).
//
// A module is split into principals named by pointer values (the address of
// the socket / net_device / block device the instance serves). Two special
// principals exist per module:
//   shared — capabilities every principal in the module may use (initial
//            imports, module sections); checks fall back to it.
//   global — implicitly owns the union of all the module's capabilities;
//            code manipulating cross-instance state switches to it.
// A logical principal can have several names (pci_dev vs net_device);
// lxfi_princ_alias maps a new name onto an existing principal.
//
// SMP model: a Principal owns one capability table (mutated under the
// per-principal Spinlock in concurrent mode, probed lock-free by any CPU)
// plus one EnforcementContext memo shard per simulated CPU, so hot-path
// memo state never bounces between cores. ModuleCtx keeps an RCU-style
// published snapshot of its instance-principal list: creators publish a new
// snapshot under the module lock, concurrent revokers and ownership chains
// iterate the snapshot lock-free, and superseded snapshots (and dropped
// principals) are reclaimed through the quiescent-state EpochReclaimer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/flat_table.h"
#include "src/base/sync.h"
#include "src/lxfi/cap_table.h"
#include "src/lxfi/enforcement_context.h"

namespace kern {
class Module;
}

namespace lxfi {

class Runtime;

enum class PrincipalKind {
  kInstance,
  kShared,
  kGlobal,
};

class ModuleCtx;

class Principal {
 public:
  Principal(ModuleCtx* module, PrincipalKind kind, uintptr_t name)
      : module_(module), kind_(kind), name_(name) {}

  ModuleCtx* module() const { return module_; }
  PrincipalKind kind() const { return kind_; }
  uintptr_t name() const { return name_; }
  // Process-unique id minted at construction: the attribution key trace
  // records and the violation flight recorder carry (0 = trusted kernel).
  uint32_t trace_id() const { return trace_id_; }

  CapTable& caps() { return caps_; }
  const CapTable& caps() const { return caps_; }

  // Serializes capability-table mutation (and the writer-page record) in
  // concurrent mode; lock-free probes never take it.
  Spinlock& lock() { return lock_; }

  // Pages this principal has already been recorded for in the global
  // WriterSet. Guarded by lock(); lets the per-packet grant path skip the
  // global writer-set lock once a page is recorded (steady state). Valid
  // only for the WriterSet clear generation it was recorded under —
  // Runtime::Grant flushes it when the generation moved (ClearRange /
  // RemoveWriter erased attribution these records would otherwise hide).
  FlatSet& writer_pages() { return writer_pages_; }
  uint64_t writer_pages_gen() const { return writer_pages_gen_; }
  void set_writer_pages_gen(uint64_t gen) { writer_pages_gen_ = gen; }

  // The fused per-CPU enforcement shard (memos + guard counters) the
  // runtime hot paths operate on. A shard is written only by its CPU.
  EnforcementContext& ctx() { return shards_[ThisShardIndex()]; }
  const EnforcementContext& ctx() const { return shards_[ThisShardIndex()]; }
  EnforcementContext& ctx(int shard) { return shards_[shard]; }

  // --- partitioned-heap span -------------------------------------------------
  // The principal's heap-partition span [arena_lo_, arena_hi_): ownership of
  // the principal's own allocations as a pure address-range property. The
  // store guard reads both bounds with relaxed loads (same discipline as
  // RevocationEpoch::CurrentRelaxed); the three-compare form below is safe
  // against any publish interleaving, because a half-published span — one
  // bound still at its at-rest sentinel (lo=~0, hi=0) — can only *shrink*
  // the accepted range to empty, never widen it.
  static constexpr int kNoHeap = -1;

  void PublishArena(int partition, uintptr_t lo, uintptr_t hi) {
    heap_partition_ = partition;
    arena_lo_.store(lo, std::memory_order_release);
    arena_hi_.store(hi, std::memory_order_release);
  }
  // Sealing fails the span check closed; the caller (Runtime) bumps the
  // revocation epoch so memoized allows covering the span die with it.
  void SealArena() { arena_sealed_.store(true, std::memory_order_release); }
  void ResetArena() {
    heap_partition_ = kNoHeap;
    arena_hi_.store(0, std::memory_order_release);
    arena_lo_.store(UINTPTR_MAX, std::memory_order_release);
    arena_sealed_.store(false, std::memory_order_release);
  }

  bool ArenaContains(uintptr_t addr, size_t size) const {
    uintptr_t lo = arena_lo_.load(std::memory_order_relaxed);
    uintptr_t hi = arena_hi_.load(std::memory_order_relaxed);
    return addr >= lo && addr < hi && size <= hi - addr;
  }
  bool arena_sealed() const { return arena_sealed_.load(std::memory_order_relaxed); }
  bool has_arena() const { return arena_hi_.load(std::memory_order_relaxed) != 0; }
  uintptr_t arena_lo() const { return arena_lo_.load(std::memory_order_relaxed); }
  uintptr_t arena_hi() const { return arena_hi_.load(std::memory_order_relaxed); }
  int heap_partition() const { return heap_partition_; }

  // Allocations that silently fell back to the shared heap because the
  // principal's partition slot was exhausted (or no slot could be carved) —
  // each one weakens isolation, so it is counted, traced (kArenaFallback)
  // and revoked at quarantine time like arena memory.
  void NoteArenaFallback() { arena_fallbacks_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t arena_fallbacks() const { return arena_fallbacks_.load(std::memory_order_relaxed); }

  std::string DebugName() const;

 private:
  ModuleCtx* module_;
  PrincipalKind kind_;
  uintptr_t name_;  // primary name (0 for shared/global)
  uint32_t trace_id_ = MintPrincipalTraceId();
  // Heap-partition span, read on the store-guard fast path (sentinel values
  // fail every contains check). heap_partition_ is written once at publish
  // time from the allocating context.
  std::atomic<uintptr_t> arena_lo_{UINTPTR_MAX};
  std::atomic<uintptr_t> arena_hi_{0};
  std::atomic<bool> arena_sealed_{false};
  std::atomic<uint64_t> arena_fallbacks_{0};
  int heap_partition_ = kNoHeap;
  CapTable caps_;
  Spinlock lock_;
  FlatSet writer_pages_;
  uint64_t writer_pages_gen_ = 0;  // guarded by lock_
  EnforcementContext shards_[kMaxCpuShards];
};

// Per-loaded-module LXFI state.
class ModuleCtx {
 public:
  ModuleCtx(Runtime* runtime, kern::Module* kmod);
  ~ModuleCtx();

  Runtime* runtime() const { return runtime_; }
  kern::Module* kmod() const { return kmod_; }
  const std::string& name() const;

  // Switches this module's principal state into SMP mode: capability tables
  // retire replaced slot arrays through `reclaimer`, instance creation
  // publishes snapshots, and ownership probes go lock-free. Must be called
  // before any concurrent access (Runtime does it at module load).
  void EnableConcurrent(EpochReclaimer* reclaimer);
  bool concurrent() const { return reclaimer_ != nullptr; }

  Principal* shared() { return &shared_; }
  Principal* global() { return &global_; }

  // Finds the principal for `name`, creating an instance principal on first
  // use (instances come into existence when first named, e.g. by a
  // principal() annotation selecting a socket pointer). Lock-free on the
  // (overwhelmingly common) hit path in concurrent mode.
  Principal* GetOrCreate(uintptr_t name);
  Principal* Lookup(uintptr_t name) const;

  // lxfi_princ_alias: binds `alias` to the principal currently named
  // `existing` (§3.3). Fails (returns false) when `existing` is unknown.
  bool Alias(uintptr_t existing, uintptr_t alias);

  // Drops an instance principal and its capabilities (e.g. socket release).
  // In concurrent mode the principal's memory is reclaimed only after a
  // grace period, so in-flight lock-free probes stay safe.
  void DropInstance(uintptr_t name);

  // All instance principals (no shared/global). Not safe against concurrent
  // instance creation; use only from quiescent contexts (setup, teardown,
  // diagnostics). Enforcement paths iterate the published snapshot instead.
  const std::vector<std::unique_ptr<Principal>>& instances() const { return instances_; }

  // Capability ownership honoring shared/global semantics:
  //  - `p` owns the cap directly, or
  //  - the module's shared principal owns it, or
  //  - `p` is the global principal and *any* principal of the module owns it.
  bool Owns(const Principal* p, const Capability& cap) const;

  // WRITE ownership with the same fallback chain, reporting the containing
  // granted range [*lo, *hi) so the caller can fill its write memo.
  bool OwnsWrite(const Principal* p, uintptr_t addr, size_t size, uintptr_t* lo,
                 uintptr_t* hi) const;

  // CALL ownership with the same fallback chain (no range to report).
  bool OwnsCall(const Principal* p, uintptr_t target) const;

  // Lock-free variants for SMP enforcement: identical fallback chain, but
  // every table probe is seqlock-validated and the global-principal case
  // walks the published instance snapshot.
  bool OwnsConcurrent(const Principal* p, const Capability& cap) const;
  bool OwnsWriteConcurrent(const Principal* p, uintptr_t addr, size_t size, uintptr_t* lo,
                           uintptr_t* hi) const;
  bool OwnsCallConcurrent(const Principal* p, uintptr_t target) const;

 private:
  // Shared self -> shared -> (global: instances) fallback chain; `probe`
  // tests one principal's table. Defined in principal.cc.
  template <typename Probe>
  bool OwnsChain(const Principal* p, Probe&& probe) const;
  template <typename Probe>
  bool OwnsChainConcurrent(const Principal* p, Probe&& probe) const;

 public:

  // Revokes `cap` from every principal of this module; returns true if any
  // principal held it. In concurrent mode each affected principal is
  // revoked under its own lock, pre-filtered by a lock-free probe.
  bool RevokeEverywhere(const Capability& cap);

  // --- heap-partition bookkeeping -------------------------------------------
  // Partitions carved for this module's principals. Records outlive dropped
  // instance principals (a socket that dies with live allocations orphans
  // its slot), so module unload can sweep every slot the module ever owned
  // in bulk.
  struct HeapPartitionRecord {
    int id;
    uintptr_t lo;
    uintptr_t hi;
  };
  void RecordHeapPartition(int id, uintptr_t lo, uintptr_t hi) {
    SpinGuard guard(mu_);
    heap_partitions_.push_back(HeapPartitionRecord{id, lo, hi});
  }
  void ForgetHeapPartition(int id) {
    SpinGuard guard(mu_);
    for (auto it = heap_partitions_.begin(); it != heap_partitions_.end(); ++it) {
      if (it->id == id) {
        heap_partitions_.erase(it);
        return;
      }
    }
  }
  std::vector<HeapPartitionRecord> TakeHeapPartitions() {
    SpinGuard guard(mu_);
    std::vector<HeapPartitionRecord> out;
    out.swap(heap_partitions_);
    return out;
  }

  // --- shared-heap fallback bookkeeping --------------------------------------
  // Objects a principal allocated on the *shared* heap because its partition
  // slot was exhausted. Containment revokes exactly these at quarantine time
  // (the arena sweep cannot see them), so the fallback path does not become
  // an isolation hole.
  struct ArenaFallbackRecord {
    Principal* owner;
    uintptr_t addr;
    size_t size;
  };
  void RecordArenaFallback(Principal* owner, uintptr_t addr, size_t size) {
    SpinGuard guard(mu_);
    arena_fallbacks_.push_back(ArenaFallbackRecord{owner, addr, size});
  }
  std::vector<ArenaFallbackRecord> TakeArenaFallbacks() {
    SpinGuard guard(mu_);
    std::vector<ArenaFallbackRecord> out;
    out.swap(arena_fallbacks_);
    return out;
  }

  // Visits shared, global, then every live instance principal, serialized
  // against concurrent instance creation by the module lock. Safe from any
  // thread (containment quarantines from the faulting CPU); `fn` must not
  // create or drop principals.
  template <typename Fn>
  void ForEachPrincipal(Fn&& fn) {
    fn(&shared_);
    fn(&global_);
    SpinGuard guard(mu_);
    for (const auto& inst : instances_) {
      fn(inst.get());
    }
  }

 private:
  struct InstanceSnapshot {
    std::vector<Principal*> items;
  };

  const InstanceSnapshot* AcquireSnapshot() const {
    return __atomic_load_n(&inst_snapshot_, __ATOMIC_ACQUIRE);
  }
  // Rebuilds and publishes the snapshot from instances_; caller holds mu_
  // (or is single-threaded). Retires the old snapshot.
  void PublishSnapshot();

  Runtime* runtime_;
  kern::Module* kmod_;
  Principal shared_;
  Principal global_;
  mutable Spinlock mu_;  // guards instances_ / by_name_ mutation
  std::vector<std::unique_ptr<Principal>> instances_;
  FlatTable<Principal*> by_name_;
  InstanceSnapshot* inst_snapshot_ = nullptr;
  EpochReclaimer* reclaimer_ = nullptr;
  std::vector<HeapPartitionRecord> heap_partitions_;  // guarded by mu_
  std::vector<ArenaFallbackRecord> arena_fallbacks_;  // guarded by mu_
};

}  // namespace lxfi
