// Principals and per-module principal state (§3.1).
//
// A module is split into principals named by pointer values (the address of
// the socket / net_device / block device the instance serves). Two special
// principals exist per module:
//   shared — capabilities every principal in the module may use (initial
//            imports, module sections); checks fall back to it.
//   global — implicitly owns the union of all the module's capabilities;
//            code manipulating cross-instance state switches to it.
// A logical principal can have several names (pci_dev vs net_device);
// lxfi_princ_alias maps a new name onto an existing principal.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/flat_table.h"
#include "src/lxfi/cap_table.h"
#include "src/lxfi/enforcement_context.h"

namespace kern {
class Module;
}

namespace lxfi {

class Runtime;

enum class PrincipalKind {
  kInstance,
  kShared,
  kGlobal,
};

class ModuleCtx;

class Principal {
 public:
  Principal(ModuleCtx* module, PrincipalKind kind, uintptr_t name)
      : module_(module), kind_(kind), name_(name) {}

  ModuleCtx* module() const { return module_; }
  PrincipalKind kind() const { return kind_; }
  uintptr_t name() const { return name_; }

  CapTable& caps() { return ctx_.caps; }
  const CapTable& caps() const { return ctx_.caps; }

  // The fused per-principal enforcement record (capability table + memos +
  // guard counters) the runtime hot paths operate on.
  EnforcementContext& ctx() { return ctx_; }
  const EnforcementContext& ctx() const { return ctx_; }

  std::string DebugName() const;

 private:
  ModuleCtx* module_;
  PrincipalKind kind_;
  uintptr_t name_;  // primary name (0 for shared/global)
  EnforcementContext ctx_;
};

// Per-loaded-module LXFI state.
class ModuleCtx {
 public:
  ModuleCtx(Runtime* runtime, kern::Module* kmod);

  Runtime* runtime() const { return runtime_; }
  kern::Module* kmod() const { return kmod_; }
  const std::string& name() const;

  Principal* shared() { return &shared_; }
  Principal* global() { return &global_; }

  // Finds the principal for `name`, creating an instance principal on first
  // use (instances come into existence when first named, e.g. by a
  // principal() annotation selecting a socket pointer).
  Principal* GetOrCreate(uintptr_t name);
  Principal* Lookup(uintptr_t name) const;

  // lxfi_princ_alias: binds `alias` to the principal currently named
  // `existing` (§3.3). Fails (returns false) when `existing` is unknown.
  bool Alias(uintptr_t existing, uintptr_t alias);

  // Drops an instance principal and its capabilities (e.g. socket release).
  void DropInstance(uintptr_t name);

  // All instance principals (no shared/global).
  const std::vector<std::unique_ptr<Principal>>& instances() const { return instances_; }

  // Capability ownership honoring shared/global semantics:
  //  - `p` owns the cap directly, or
  //  - the module's shared principal owns it, or
  //  - `p` is the global principal and *any* principal of the module owns it.
  bool Owns(const Principal* p, const Capability& cap) const;

  // WRITE ownership with the same fallback chain, reporting the containing
  // granted range [*lo, *hi) so the caller can fill its write memo.
  bool OwnsWrite(const Principal* p, uintptr_t addr, size_t size, uintptr_t* lo,
                 uintptr_t* hi) const;

  // CALL ownership with the same fallback chain (no range to report).
  bool OwnsCall(const Principal* p, uintptr_t target) const;

 private:
  // Shared self -> shared -> (global: instances) fallback chain; `probe`
  // tests one principal's table. Defined in principal.cc.
  template <typename Probe>
  bool OwnsChain(const Principal* p, Probe&& probe) const;

 public:

  // Revokes `cap` from every principal of this module; returns true if any
  // principal held it.
  bool RevokeEverywhere(const Capability& cap);

 private:
  Runtime* runtime_;
  kern::Module* kmod_;
  Principal shared_;
  Principal global_;
  std::vector<std::unique_ptr<Principal>> instances_;
  FlatTable<Principal*> by_name_;
};

}  // namespace lxfi
