// Registry of annotation sets and capability iterators.
//
// Keyed by symbol name (kernel exports like "kmalloc") or function-pointer
// type name ("net_device_ops::ndo_start_xmit"). Annotation propagation
// (§4.2) gives each module-defined function the annotation set of its
// declared function-pointer type; the §4.1 indirect-call check compares the
// ahash of the invoked function against the ahash of the call site's pointer
// type. The registry also tracks, for Figure 9, which modules use each
// annotated name.
//
// Registration is the compile step of the annotation pipeline: Register()
// parses the text into an AST and immediately lowers it into a GuardProgram
// (guard_program.h), so wrapper crossings never touch the AST. Name lookups
// (Find/AhashOf — the latter sits on the kernel indirect-call path) probe a
// FlatTable keyed by FNV-1a of the name instead of walking a std::map of
// strings; the ordered map is kept for ownership and for deterministic
// all()/uses() iteration (DumpState, the Figure 9 survey).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/flat_table.h"
#include "src/base/hash.h"
#include "src/base/status.h"
#include "src/lxfi/annotation.h"
#include "src/lxfi/cap.h"
#include "src/lxfi/cap_iterator.h"

namespace lxfi {

class AnnotationRegistry {
 public:
  // Binds the iterator registry the compile pass resolves iterator-func
  // names against (optional; unresolved slots resolve lazily at execution).
  void BindIterators(const IteratorRegistry* iters) { iters_ = iters; }

  // Registers (or re-registers identically) annotations for `name`. Returns
  // an error on parse failure or on a conflicting redefinition, mirroring
  // the rewriter's "annotations must be exactly the same" rule.
  lxfi::Status Register(const std::string& name, const std::vector<std::string>& params,
                        const std::string& text);

  const AnnotationSet* Find(std::string_view name) const;

  // ahash of `name`'s annotations; 0 when unannotated.
  uint64_t AhashOf(std::string_view name) const {
    const AnnotationSet* set = Find(name);
    return set == nullptr ? 0 : set->ahash;
  }

  // Figure 9 accounting: a module's loader calls this for every annotated
  // name the module touches (imports and function-pointer types).
  void NoteUse(const std::string& name, const std::string& module_name);
  const std::map<std::string, std::set<std::string>>& uses() const { return uses_; }

  const std::map<std::string, std::unique_ptr<AnnotationSet>>& all() const { return sets_; }

 private:
  const IteratorRegistry* iters_ = nullptr;
  // Fast path: FNV-1a(name) -> set. On the astronomically unlikely hash
  // collision the first name keeps the slot and colliding names fall back to
  // the ordered map (see Register/Find).
  FlatTable<const AnnotationSet*> index_;
  std::map<std::string, std::unique_ptr<AnnotationSet>> sets_;
  std::map<std::string, std::set<std::string>> uses_;  // name -> modules using it
};

}  // namespace lxfi
