// Registry of annotation sets and capability iterators.
//
// Keyed by symbol name (kernel exports like "kmalloc") or function-pointer
// type name ("net_device_ops::ndo_start_xmit"). Annotation propagation
// (§4.2) gives each module-defined function the annotation set of its
// declared function-pointer type; the §4.1 indirect-call check compares the
// ahash of the invoked function against the ahash of the call site's pointer
// type. The registry also tracks, for Figure 9, which modules use each
// annotated name.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/lxfi/annotation.h"
#include "src/lxfi/cap.h"

namespace kern {
class Kernel;
}

namespace lxfi {

class AnnotationRegistry {
 public:
  // Registers (or re-registers identically) annotations for `name`. Returns
  // an error on parse failure or on a conflicting redefinition, mirroring
  // the rewriter's "annotations must be exactly the same" rule.
  lxfi::Status Register(const std::string& name, const std::vector<std::string>& params,
                        const std::string& text);

  const AnnotationSet* Find(const std::string& name) const;

  // ahash of `name`'s annotations; 0 when unannotated.
  uint64_t AhashOf(const std::string& name) const;

  // Figure 9 accounting: a module's loader calls this for every annotated
  // name the module touches (imports and function-pointer types).
  void NoteUse(const std::string& name, const std::string& module_name);
  const std::map<std::string, std::set<std::string>>& uses() const { return uses_; }

  const std::map<std::string, std::unique_ptr<AnnotationSet>>& all() const { return sets_; }

 private:
  std::map<std::string, std::unique_ptr<AnnotationSet>> sets_;
  std::map<std::string, std::set<std::string>> uses_;  // name -> modules using it
};

// Capability iterators (the paper's iterator-func, e.g. skb_caps): a
// programmer-supplied function enumerating the capabilities that make up a
// compound object. `arg` is the evaluated annotation expression (usually a
// pointer).
class CapIterContext {
 public:
  explicit CapIterContext(kern::Kernel* kernel) : kernel_(kernel) {}

  kern::Kernel* kernel() const { return kernel_; }
  void Emit(const Capability& cap) { caps_.push_back(cap); }
  const std::vector<Capability>& caps() const { return caps_; }

 private:
  kern::Kernel* kernel_;
  std::vector<Capability> caps_;
};

using CapIterator = std::function<void(CapIterContext&, uint64_t arg)>;

class IteratorRegistry {
 public:
  void Register(const std::string& name, CapIterator fn) { iterators_[name] = std::move(fn); }
  const CapIterator* Find(const std::string& name) const {
    auto it = iterators_.find(name);
    return it == iterators_.end() ? nullptr : &it->second;
  }
  size_t size() const { return iterators_.size(); }
  const std::map<std::string, CapIterator>& all() const { return iterators_; }

 private:
  std::map<std::string, CapIterator> iterators_;
};

}  // namespace lxfi
