// Concurrent-enforcement stress tests (run under TSan in CI).
//
// The contract under test (docs/smp_enforcement.md): capability checks may
// run lock-free on any simulated CPU while grants/revokes proceed; a check
// that began before a revoke returned may pass with the old capability, but
// once a thread has observed — through ordinary release/acquire
// synchronization — that a revoke has returned, no check on any CPU may
// pass for the revoked capability, memos included. Plus a grant/revoke/
// instance-churn storm that exercises rehash + grace-period reclamation
// under concurrent readers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/base/sync.h"
#include "src/kernel/kernel.h"
#include "src/kernel/smp.h"
#include "src/lxfi/cap.h"
#include "src/lxfi/runtime.h"
#include "tests/testbench.h"

namespace {

constexpr uintptr_t kPoolBase = 0x7f6000000000ull;

struct ConcurrentRig {
  ConcurrentRig() {
    lxfi::RuntimeOptions options;
    options.policy = lxfi::ViolationPolicy::kCount;
    options.concurrent_enforcement = true;
    bench = std::make_unique<lxfitest::Bench>(/*isolated=*/true, options);
    kern::ModuleDef def;
    def.name = "stress";
    module = bench->kernel->LoadModule(std::move(def));
    EXPECT_NE(module, nullptr);
    mc = bench->rt->CtxOf(module);
  }

  lxfi::Runtime* rt() { return bench->rt.get(); }

  std::unique_ptr<lxfitest::Bench> bench;
  kern::Module* module = nullptr;
  lxfi::ModuleCtx* mc = nullptr;
};

// One checker per CPU spins on OwnsWriteFast/OwnsCallFast — the exact
// memoized paths the store guard and CALL check use — while the main thread
// grants and revokes in phases. Phase protocol: phase = 2*round+1 after the
// round's grant returned, 2*round+2 after its revoke returned. A checker
// that loads phase == revoked(round) *before* checking must see the check
// fail; a single stale pass is a revocation-fence bug.
TEST(ConcurrentEnforcement, RevokeFenceNeverPassesAfterReturn) {
  ConcurrentRig rig;
  lxfi::Principal* p = rig.mc->GetOrCreate(0xabc0);
  constexpr int kCpus = 3;
  constexpr uint64_t kRounds = 150;
  kern::CpuSet cpus(rig.bench->kernel.get(), kCpus);

  std::atomic<uint64_t> phase{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> stale_passes{0};
  std::atomic<uint64_t> acked[kCpus] = {};

  auto write_addr = [](uint64_t round) { return kPoolBase + round * 0x1000; };
  auto call_addr = [](uint64_t round) { return 0xffffffff81700000ull + round * 0x100; };

  for (int c = 0; c < kCpus; ++c) {
    cpus.RunOn(c, [&, c] {
      uint64_t iters = 0;
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t ph = phase.load(std::memory_order_acquire);
        if (ph == 0) {
          kern::CpuSet::QuiescePoint();
          continue;
        }
        uint64_t round = (ph - 1) / 2;
        bool revoked_phase = (ph & 1) == 0;
        bool wok = rig.rt()->OwnsWriteFast(p, write_addr(round), 8);
        bool cok = rig.rt()->OwnsCallFast(p, call_addr(round));
        if (revoked_phase) {
          // The revoke for `round` returned before we loaded `ph`; neither
          // the table nor any memo may still say yes.
          if (wok || cok) {
            stale_passes.fetch_add(1);
          }
          acked[c].store(ph, std::memory_order_release);
        } else if (wok && cok) {
          // Saw the granted state; tell the driver we exercised it.
          acked[c].store(ph, std::memory_order_release);
        }
        if ((++iters & 255) == 0) {
          kern::CpuSet::QuiescePoint();
        }
      }
    });
  }

  auto wait_all_acked = [&](uint64_t target) {
    for (int c = 0; c < kCpus; ++c) {
      while (acked[c].load(std::memory_order_acquire) < target) {
        std::this_thread::yield();
      }
    }
  };

  for (uint64_t round = 0; round < kRounds; ++round) {
    lxfi::Capability wcap = lxfi::Capability::Write(write_addr(round), 64);
    lxfi::Capability ccap = lxfi::Capability::Call(call_addr(round));
    rig.rt()->Grant(p, wcap);
    rig.rt()->Grant(p, ccap);
    phase.store(2 * round + 1, std::memory_order_release);
    wait_all_acked(2 * round + 1);  // every CPU passed (and memoized) it
    rig.rt()->RevokeEverywhere(wcap);
    rig.rt()->RevokeEverywhere(ccap);
    phase.store(2 * round + 2, std::memory_order_release);
    wait_all_acked(2 * round + 2);  // every CPU observed it fail
  }
  stop.store(true, std::memory_order_release);
  cpus.Barrier();
  EXPECT_EQ(stale_passes.load(), 0u);
}

// Storm: one mutator (main thread) hammers grants, overlapping revokes,
// instance-principal creation and drops — forcing table growth, backward
// shifts, snapshot republication and grace-period reclamation — while every
// CPU probes the same principals lock-free, including the global principal
// whose ownership chain walks the instance snapshot. The assertions are
// (a) nothing crashes or races (TSan), and (b) after a final barrier the
// table agrees with a replayed reference.
TEST(ConcurrentEnforcement, GrantRevokeInstanceStorm) {
  ConcurrentRig rig;
  lxfi::Principal* shared = rig.mc->shared();
  lxfi::Principal* global = rig.mc->global();
  constexpr int kCpus = 3;
  constexpr int kSlots = 64;
  kern::CpuSet cpus(rig.bench->kernel.get(), kCpus);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checks_done{0};
  for (int c = 0; c < kCpus; ++c) {
    cpus.RunOn(c, [&, c] {
      lxfi::Rng rng(1000 + c);
      uint64_t iters = 0;
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t slot = rng.Below(kSlots);
        uintptr_t addr = kPoolBase + slot * 0x800;
        // Both the plain-principal path and the global chain (snapshot walk).
        rig.rt()->OwnsWriteFast(shared, addr, 16);
        rig.rt()->OwnsWriteFast(global, addr, 16);
        rig.rt()->OwnsCallFast(shared, 0xffffffff81780000ull + slot * 0x100);
        checks_done.fetch_add(1, std::memory_order_relaxed);
        if ((++iters & 127) == 0) {
          kern::CpuSet::QuiescePoint();
        }
      }
    });
  }

  lxfi::Rng rng(7);
  std::vector<bool> granted(kSlots, false);
  for (int iter = 0; iter < 4000; ++iter) {
    uint64_t slot = rng.Below(kSlots);
    uintptr_t addr = kPoolBase + slot * 0x800;
    switch (rng.Below(4)) {
      case 0:
        rig.rt()->Grant(shared, lxfi::Capability::Write(addr, 128));
        granted[slot] = true;
        break;
      case 1:
        rig.rt()->RevokeEverywhere(lxfi::Capability::Write(addr, 128));
        granted[slot] = false;
        break;
      case 2: {  // instance churn: create, grant, drop
        uintptr_t name = 0xcafe0000 + rng.Below(16);
        lxfi::Principal* inst = rig.mc->GetOrCreate(name);
        rig.rt()->Grant(inst, lxfi::Capability::Call(0xffffffff81790000ull + name));
        if (rng.Below(2) == 0) {
          rig.rt()->DropPrincipal(rig.module, reinterpret_cast<const void*>(name));
        }
        break;
      }
      default:
        rig.rt()->Grant(shared, lxfi::Capability::Call(0xffffffff81780000ull + slot * 0x100));
        break;
    }
    if ((iter & 63) == 0) {
      std::this_thread::yield();  // let checkers overlap on small hosts
    }
  }
  // Keep the final table state live until every CPU has demonstrably probed
  // it concurrently (a fast mutator on a single-core host could otherwise
  // finish before the checkers ever ran).
  while (checks_done.load(std::memory_order_acquire) < 3000) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  cpus.Barrier();
  EXPECT_GT(checks_done.load(), 0u);

  // Quiescent now: the table must agree with the replayed grant/revoke log.
  for (int slot = 0; slot < kSlots; ++slot) {
    uintptr_t addr = kPoolBase + slot * 0x800;
    EXPECT_EQ(shared->caps().CheckWrite(addr, 128), granted[slot]) << "slot " << slot;
  }
}

// Partitioned-heap storm: the mutator churns per-instance heap arenas —
// carve, allocate, free, seal, drain, teardown+recycle — while every CPU
// hammers the arena-span fast path (OwnsWriteFast's first compare) on the
// live principal. The assertions are (a) nothing crashes or races under
// TSan (torn span publishes must be harmless: the sentinel protocol makes a
// half-visible span fail every contains check), and (b) once a walker has
// observed — through the phase release/acquire edge — that the seal
// returned, no span check may still answer yes: the quarantine fails closed
// across CPUs, memos included (the seal bumps the revocation epoch).
TEST(ConcurrentEnforcement, ArenaAllocSealTeardownStorm) {
  ConcurrentRig rig;
  rig.rt()->EnablePartitionedHeaps();
  constexpr int kCpus = 3;
  constexpr uint64_t kRounds = 60;
  kern::CpuSet cpus(rig.bench->kernel.get(), kCpus);

  std::atomic<uint64_t> phase{0};
  std::atomic<lxfi::Principal*> target{nullptr};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> stale_passes{0};
  std::atomic<uint64_t> span_probes{0};
  std::atomic<uint64_t> acked[kCpus] = {};

  for (int c = 0; c < kCpus; ++c) {
    cpus.RunOn(c, [&, c] {
      uint64_t iters = 0;
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t ph = phase.load(std::memory_order_acquire);
        uint64_t state = ph == 0 ? 2 : (ph - 1) % 3;
        if (state == 2) {  // parked: the principal may be mid-teardown
          acked[c].store(ph, std::memory_order_release);
          kern::CpuSet::QuiescePoint();
          continue;
        }
        lxfi::Principal* p = target.load(std::memory_order_acquire);
        if (p == nullptr) {
          kern::CpuSet::QuiescePoint();
          continue;
        }
        uintptr_t addr = p->arena_lo() + (iters % 1024) * 64;
        bool wok = rig.rt()->OwnsWriteFast(p, addr, 8);
        span_probes.fetch_add(1, std::memory_order_relaxed);
        if (state == 0) {  // live: the span must satisfy the fast path
          if (wok) {
            acked[c].store(ph, std::memory_order_release);
          }
        } else {  // sealed before we loaded ph: must fail closed
          if (wok) {
            stale_passes.fetch_add(1);
          }
          acked[c].store(ph, std::memory_order_release);
        }
        if ((++iters & 127) == 0) {
          kern::CpuSet::QuiescePoint();
        }
      }
    });
  }

  auto wait_all_acked = [&](uint64_t want) {
    for (int c = 0; c < kCpus; ++c) {
      while (acked[c].load(std::memory_order_acquire) < want) {
        std::this_thread::yield();
      }
    }
  };

  for (uint64_t round = 0; round < kRounds; ++round) {
    uintptr_t name = 0xa11c0000 + round;
    lxfi::Principal* inst = rig.mc->GetOrCreate(name);
    std::vector<void*> objs;
    {
      lxfi::ScopedPrincipal as_inst(rig.rt(), inst);
      for (int i = 0; i < 16; ++i) {
        void* p = rig.rt()->PartitionedAlloc(64);
        ASSERT_NE(p, nullptr);
        objs.push_back(p);
      }
    }
    ASSERT_TRUE(inst->has_arena());
    target.store(inst, std::memory_order_release);
    phase.store(3 * round + 1, std::memory_order_release);
    wait_all_acked(3 * round + 1);  // every CPU hit the live span
    // Alloc/free churn racing the walkers' span probes.
    {
      lxfi::ScopedPrincipal as_inst(rig.rt(), inst);
      for (int i = 0; i < 8; ++i) {
        rig.bench->kernel->slab().Free(objs[i]);
        objs[i] = rig.rt()->PartitionedAlloc(48);
        ASSERT_NE(objs[i], nullptr);
      }
    }
    rig.rt()->SealPrincipalHeap(inst);
    phase.store(3 * round + 2, std::memory_order_release);
    wait_all_acked(3 * round + 2);  // every CPU observed fail-closed
    // Park the walkers, then drain and tear down (recycles the slot).
    target.store(nullptr, std::memory_order_release);
    phase.store(3 * round + 3, std::memory_order_release);
    wait_all_acked(3 * round + 3);
    for (void* p : objs) {
      rig.bench->kernel->slab().Free(p);
    }
    rig.rt()->DropPrincipal(rig.module, reinterpret_cast<const void*>(name));
  }
  stop.store(true, std::memory_order_release);
  cpus.Barrier();
  EXPECT_EQ(stale_passes.load(), 0u);
  EXPECT_GT(span_probes.load(), 0u);
  // Every slot went back on the free list: a fresh partition still carves.
  EXPECT_NE(rig.bench->kernel->slab().CreatePartition(), kern::SlabAllocator::kNoPartition);
}

// Memo-specific regression: a memo filled by a probe that raced a revoke
// must be born stale. Driven deterministically here (the fence test above
// covers it statistically): fill happens with an epoch read before the
// probe, so validation after the revoke's bump must fail.
TEST(ConcurrentEnforcement, MemoFilledAcrossRevokeIsStale) {
  ConcurrentRig rig;
  lxfi::Principal* p = rig.mc->GetOrCreate(0xbeef);
  lxfi::Capability cap = lxfi::Capability::Write(kPoolBase, 64);
  rig.rt()->Grant(p, cap);
  EXPECT_TRUE(rig.rt()->OwnsWriteFast(p, kPoolBase, 8));  // memoized
  rig.rt()->RevokeEverywhere(cap);
  // The revoke returned: the memo must not validate, and the table says no.
  EXPECT_FALSE(rig.rt()->OwnsWriteFast(p, kPoolBase, 8));
}

}  // namespace
