// Transport engine tests: UDP datagram semantics and the TCP invariant the
// DESIGN.md property list calls out — in-order, complete delivery under
// random loss.
#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/kernel/net/transport.h"

namespace {

using kern::LossyLink;
using kern::TcpEndpoint;
using kern::UdpEndpoint;

std::vector<uint8_t> TestBytes(size_t n, uint64_t seed) {
  lxfi::Rng rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

TEST(Udp, LosslessDelivery) {
  UdpEndpoint a, b;
  LossyLink link;
  link.Connect(&a, &b, nullptr, nullptr);
  auto msg = TestBytes(100, 1);
  a.Send(msg.data(), msg.size());
  a.Send(msg.data(), 50);
  ASSERT_EQ(b.inbox().size(), 2u);
  EXPECT_EQ(b.inbox()[0], msg);
  EXPECT_EQ(b.inbox()[1].size(), 50u);
}

TEST(Udp, LossDropsDatagramsSilently) {
  UdpEndpoint a, b;
  LossyLink link;
  int n = 0;
  link.Connect(&a, &b, [&] { return (++n % 2) == 0; }, nullptr);
  auto msg = TestBytes(32, 2);
  for (int i = 0; i < 10; ++i) {
    a.Send(msg.data(), msg.size());
  }
  EXPECT_EQ(a.sent(), 10u);
  EXPECT_EQ(b.received(), 5u);
  EXPECT_EQ(link.dropped(), 5u);
}

TEST(Tcp, LosslessStream) {
  TcpEndpoint a, b;
  LossyLink link;
  link.Connect(&a, &b, nullptr, nullptr);
  auto data = TestBytes(10000, 3);
  a.Send(data.data(), data.size());
  EXPECT_EQ(b.received_stream(), data);
  EXPECT_TRUE(a.AllAcked());
  EXPECT_EQ(a.retransmits, 0u);
}

TEST(Tcp, WindowLimitsInFlight) {
  TcpEndpoint a(/*window=*/4);
  // No peer wired: count emitted segments.
  size_t frames = 0;
  a.SetTx([&](const uint8_t*, size_t) { ++frames; });
  auto data = TestBytes(100 * kern::kTransportMss, 4);
  a.Send(data.data(), data.size());
  EXPECT_EQ(frames, 4u) << "only a window's worth may be in flight unacked";
}

TEST(Tcp, RetransmitRecoversFromTotalBlackout) {
  TcpEndpoint a, b;
  LossyLink link;
  bool blackout = true;
  link.Connect(&a, &b, [&] { return blackout; }, nullptr);
  auto data = TestBytes(3 * kern::kTransportMss, 5);
  a.Send(data.data(), data.size());
  EXPECT_TRUE(b.received_stream().empty());
  blackout = false;
  for (int tick = 0; tick < 32 && !a.AllAcked(); ++tick) {
    a.Tick();
  }
  EXPECT_EQ(b.received_stream(), data);
  EXPECT_GE(a.retransmits, 1u);
}

TEST(Tcp, DuplicateSegmentsIgnored) {
  TcpEndpoint a, b;
  // Duplicate every frame a->b.
  a.SetTx([&](const uint8_t* f, size_t n) {
    b.OnFrame(f, n);
    b.OnFrame(f, n);
  });
  b.SetTx([&](const uint8_t* f, size_t n) { a.OnFrame(f, n); });
  auto data = TestBytes(5 * kern::kTransportMss, 6);
  a.Send(data.data(), data.size());
  EXPECT_EQ(b.received_stream(), data) << "duplicates must not corrupt the stream";
}

struct LossCase {
  double loss;
  uint64_t seed;
  size_t bytes;
};

class TcpLossProperty : public ::testing::TestWithParam<LossCase> {};

// The DESIGN.md property: under random bidirectional loss, the receiver
// eventually observes exactly the sent byte stream, in order.
TEST_P(TcpLossProperty, InOrderCompleteDeliveryUnderLoss) {
  const LossCase& c = GetParam();
  auto rng = std::make_shared<lxfi::Rng>(c.seed);
  TcpEndpoint a(/*window=*/8, /*rto_ticks=*/2);
  TcpEndpoint b;
  LossyLink link;
  link.Connect(
      &a, &b, [rng, p = c.loss] { return rng->Chance(p); },
      [rng, p = c.loss] { return rng->Chance(p); });

  auto data = TestBytes(c.bytes, c.seed * 7 + 1);
  // Feed in random-sized application writes.
  lxfi::Rng wr(c.seed + 99);
  size_t off = 0;
  while (off < data.size()) {
    size_t n = std::min<size_t>(1 + wr.Below(3000), data.size() - off);
    a.Send(data.data() + off, n);
    off += n;
    a.Tick();
  }
  for (int tick = 0; tick < 10000 && !a.AllAcked(); ++tick) {
    a.Tick();
  }
  ASSERT_TRUE(a.AllAcked()) << "sender failed to drain under loss " << c.loss;
  EXPECT_EQ(b.received_stream().size(), data.size());
  EXPECT_EQ(b.received_stream(), data);
  if (c.loss > 0) {
    EXPECT_GT(link.dropped(), 0u) << "the link was supposed to be lossy";
    EXPECT_GE(a.retransmits, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, TcpLossProperty,
    ::testing::Values(LossCase{0.0, 10, 20000}, LossCase{0.05, 11, 20000},
                      LossCase{0.1, 12, 20000}, LossCase{0.3, 13, 8000},
                      LossCase{0.1, 14, 40000}, LossCase{0.2, 15, 16000}));

}  // namespace
