// e1000 driver integration tests: probe, principal aliasing, TX/RX data
// paths, ring behavior — on both stock and isolated kernels.
#include <gtest/gtest.h>

#include <cstring>

#include "src/kernel/kernel.h"
#include "src/kernel/net/netdevice.h"
#include "src/kernel/net/nicsim.h"
#include "src/kernel/net/skbuff.h"
#include "src/modules/e1000/e1000.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

class E1000Test : public ::testing::TestWithParam<bool> {
 protected:
  E1000Test() : bench_(GetParam()) {
    hw_ = mods::PlugInE1000Device(bench_.kernel.get());
    module_ = bench_.kernel->LoadModule(mods::E1000ModuleDef());
    stack_ = kern::GetNetStack(bench_.kernel.get());
    stack_->SetProtocolHandler(0x0800, [this](kern::SkBuff* skb) {
      ++delivered_;
      last_len_ = skb->len;
      kern::FreeSkb(bench_.kernel.get(), skb);
    });
  }

  kern::NetDevice* dev() { return stack_->DevByIndex(1); }

  kern::SkBuff* Packet(uint32_t len) {
    kern::SkBuff* skb = kern::AllocSkb(bench_.kernel.get(), len);
    uint8_t* p = kern::SkbPut(skb, len);
    p[0] = 0x00;
    p[1] = 0x08;
    return skb;
  }

  Bench bench_;
  kern::NicHw* hw_ = nullptr;
  kern::Module* module_ = nullptr;
  kern::NetStack* stack_ = nullptr;
  int delivered_ = 0;
  uint32_t last_len_ = 0;
};

TEST_P(E1000Test, ProbeBoundTheDevice) {
  ASSERT_NE(module_, nullptr);
  ASSERT_NE(dev(), nullptr);
  EXPECT_TRUE(dev()->up);
  auto st = mods::GetE1000(*module_);
  ASSERT_NE(st, nullptr);
  ASSERT_NE(st->priv(), nullptr);
  EXPECT_TRUE(st->priv()->pdev->enabled);
}

TEST_P(E1000Test, TransmitReachesTheWire) {
  int rc = stack_->DevQueueXmit(dev(), Packet(100));
  EXPECT_EQ(rc, kern::kNetdevTxOk);
  hw_->ProcessTx();
  EXPECT_EQ(hw_->frames_tx(), 1u);
  EXPECT_EQ(dev()->tx_packets, 1u);
}

TEST_P(E1000Test, TransmitPayloadIntact) {
  std::vector<uint8_t> wire;
  hw_->SetTxSink([&](const uint8_t* frame, uint16_t len) { wire.assign(frame, frame + len); });
  kern::SkBuff* skb = Packet(64);
  std::memset(skb->data + 2, 0x5c, 62);
  stack_->DevQueueXmit(dev(), skb);
  hw_->ProcessTx();
  ASSERT_EQ(wire.size(), 64u);
  EXPECT_EQ(wire[10], 0x5c);
}

TEST_P(E1000Test, RingFullReportsBusy) {
  // Fill the TX ring without letting the device drain it.
  int busy = 0;
  for (uint32_t i = 0; i < mods::kE1000TxRing + 8; ++i) {
    kern::SkBuff* skb = Packet(60);
    int rc = stack_->DevQueueXmit(dev(), skb);
    if (rc == kern::kNetdevTxBusy) {
      ++busy;
      kern::FreeSkb(bench_.kernel.get(), skb);
    }
  }
  EXPECT_GT(busy, 0);
  // Drain and confirm recovery.
  hw_->ProcessTx();
  EXPECT_EQ(stack_->DevQueueXmit(dev(), Packet(60)), kern::kNetdevTxOk);
}

TEST_P(E1000Test, ReceiveDeliversThroughNapi) {
  uint8_t frame[80] = {0x00, 0x08};
  ASSERT_TRUE(hw_->InjectRx(frame, sizeof(frame)));
  stack_->RunSoftirq();
  EXPECT_EQ(delivered_, 1);
  EXPECT_EQ(last_len_, 80u);
}

TEST_P(E1000Test, ReceiveBatchUnderBudget) {
  uint8_t frame[64] = {0x00, 0x08};
  for (int i = 0; i < 32; ++i) {
    hw_->InjectRx(frame, sizeof(frame), /*coalesce=*/true);
  }
  hw_->FlushRxIrq();
  stack_->RunSoftirq(64);
  EXPECT_EQ(delivered_, 32);
}

TEST_P(E1000Test, RxRingWrapsAcrossManyBatches) {
  uint8_t frame[64] = {0x00, 0x08};
  // 4x the RX ring size in batches small enough to never overflow it.
  for (int batch = 0; batch < 16; ++batch) {
    for (uint32_t i = 0; i < mods::kE1000RxRing / 4; ++i) {
      hw_->InjectRx(frame, sizeof(frame), /*coalesce=*/true);
    }
    hw_->FlushRxIrq();
    stack_->RunSoftirq(64);
  }
  EXPECT_EQ(delivered_, static_cast<int>(16 * (mods::kE1000RxRing / 4)));
  EXPECT_EQ(hw_->rx_drops(), 0u);
}

TEST_P(E1000Test, OversizedRxBurstDropsAtTheRing) {
  uint8_t frame[64] = {0x00, 0x08};
  for (uint32_t i = 0; i < mods::kE1000RxRing * 2; ++i) {
    hw_->InjectRx(frame, sizeof(frame), /*coalesce=*/true);
  }
  EXPECT_GT(hw_->rx_drops(), 0u);
  hw_->FlushRxIrq();
  stack_->RunSoftirq(1 << 20);
  EXPECT_GT(delivered_, 0);
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, E1000Test, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

TEST(E1000Lxfi, PrincipalAliasesCoverPciNetdevAndNapi) {
  Bench bench(/*isolated=*/true);
  mods::PlugInE1000Device(bench.kernel.get());
  kern::Module* m = bench.kernel->LoadModule(mods::E1000ModuleDef());
  ASSERT_NE(m, nullptr);
  auto st = mods::GetE1000(*m);
  lxfi::ModuleCtx* ctx = bench.rt->CtxOf(m);
  lxfi::Principal* via_pci = ctx->Lookup(reinterpret_cast<uintptr_t>(st->priv()->pdev));
  lxfi::Principal* via_ndev = ctx->Lookup(reinterpret_cast<uintptr_t>(st->priv()->ndev));
  lxfi::Principal* via_napi = ctx->Lookup(reinterpret_cast<uintptr_t>(st->priv()->napi));
  ASSERT_NE(via_pci, nullptr);
  EXPECT_EQ(via_pci, via_ndev) << "pci_dev and net_device must alias one principal";
  EXPECT_EQ(via_pci, via_napi) << "napi is a third name for the same principal";
}

TEST(E1000Lxfi, TrafficCausesNoViolations) {
  Bench bench(/*isolated=*/true);
  kern::NicHw* hw = mods::PlugInE1000Device(bench.kernel.get());
  ASSERT_NE(bench.kernel->LoadModule(mods::E1000ModuleDef()), nullptr);
  kern::NetStack* stack = kern::GetNetStack(bench.kernel.get());
  stack->SetProtocolHandler(0x0800, [&](kern::SkBuff* skb) {
    kern::FreeSkb(bench.kernel.get(), skb);
  });
  kern::NetDevice* dev = stack->DevByIndex(1);
  uint8_t frame[64] = {0x00, 0x08};
  for (int i = 0; i < 200; ++i) {
    kern::SkBuff* skb = kern::AllocSkb(bench.kernel.get(), 64);
    uint8_t* p = kern::SkbPut(skb, 64);
    p[0] = 0x00;
    p[1] = 0x08;
    if (stack->DevQueueXmit(dev, skb) == kern::kNetdevTxBusy) {
      kern::FreeSkb(bench.kernel.get(), skb);
    }
    hw->ProcessTx();
    hw->InjectRx(frame, sizeof(frame));
    stack->RunSoftirq();
  }
  EXPECT_EQ(bench.rt->violation_count(), 0u)
      << "benign driver traffic must satisfy every interface contract";
}

TEST(E1000Lxfi, DriverOwnsItsRegistersButNotTheKernel) {
  Bench bench(/*isolated=*/true);
  mods::PlugInE1000Device(bench.kernel.get());
  kern::Module* m = bench.kernel->LoadModule(mods::E1000ModuleDef());
  auto st = mods::GetE1000(*m);
  lxfi::ModuleCtx* ctx = bench.rt->CtxOf(m);
  lxfi::Principal* inst = ctx->Lookup(reinterpret_cast<uintptr_t>(st->priv()->ndev));
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(bench.rt->Owns(inst, lxfi::Capability::Write(st->priv()->regs,
                                                           sizeof(kern::NicRegs))));
  // A random kernel allocation stays off-limits.
  void* kernel_obj = bench.kernel->slab().Alloc(64);
  EXPECT_FALSE(bench.rt->Owns(inst, lxfi::Capability::Write(kernel_obj, 8)));
}

}  // namespace
