// Sound module tests: snd-intel8x0 / snd-ens1370 over the PCM core.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/sound/sound.h"
#include "src/modules/snd/snd.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

struct SndCase {
  bool isolated;
  const char* which;  // "intel8x0" or "ens1370"
};

class SndTest : public ::testing::TestWithParam<SndCase> {
 protected:
  SndTest() : bench_(GetParam().isolated) {
    kern::ModuleDef def = std::string(GetParam().which) == "intel8x0"
                              ? mods::SndIntel8x0ModuleDef()
                              : mods::SndEns1370ModuleDef();
    module_ = bench_.kernel->LoadModule(std::move(def));
    core_ = kern::GetSoundCore(bench_.kernel.get());
  }

  Bench bench_;
  kern::Module* module_ = nullptr;
  kern::SoundCore* core_ = nullptr;
};

TEST_P(SndTest, CardRegisters) {
  ASSERT_NE(module_, nullptr);
  ASSERT_EQ(core_->cards().size(), 1u);
  auto st = mods::GetSnd(*module_);
  EXPECT_EQ(core_->cards()[0], st->card);
}

TEST_P(SndTest, PlaybackAdvancesPointer) {
  ASSERT_NE(module_, nullptr);
  auto st = mods::GetSnd(*module_);
  EXPECT_EQ(core_->Playback(st->card, 16), 0);
  EXPECT_EQ(st->priv->periods_played, 16u);
  // The DMA buffer was allocated at open and released at close.
  EXPECT_EQ(st->substream->dma_buffer, nullptr);
}

TEST_P(SndTest, RepeatedPlaybackSessions) {
  auto st = mods::GetSnd(*module_);
  for (int session = 0; session < 5; ++session) {
    EXPECT_EQ(core_->Playback(st->card, 4), 0);
  }
  EXPECT_EQ(st->priv->periods_played, 20u);
}

TEST_P(SndTest, UnloadUnregistersCard) {
  bench_.kernel->UnloadModule(module_);
  EXPECT_TRUE(core_->cards().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SndTest,
    ::testing::Values(SndCase{false, "intel8x0"}, SndCase{true, "intel8x0"},
                      SndCase{false, "ens1370"}, SndCase{true, "ens1370"}),
    [](const ::testing::TestParamInfo<SndCase>& info) {
      return std::string(info.param.which) + (info.param.isolated ? "Lxfi" : "Stock");
    });

TEST(SndLxfi, BothDriversCoexistWithSeparateContexts) {
  Bench bench(/*isolated=*/true);
  kern::Module* a = bench.kernel->LoadModule(mods::SndIntel8x0ModuleDef());
  kern::Module* b = bench.kernel->LoadModule(mods::SndEns1370ModuleDef());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(bench.rt->CtxOf(a), bench.rt->CtxOf(b));
  kern::SoundCore* core = kern::GetSoundCore(bench.kernel.get());
  EXPECT_EQ(core->cards().size(), 2u);
  // One module's state is not writable by the other.
  auto sa = mods::GetSnd(*a);
  auto sb = mods::GetSnd(*b);
  EXPECT_TRUE(bench.rt->Owns(bench.rt->CtxOf(a)->shared(),
                             lxfi::Capability::Write(sa->card, sizeof(kern::SoundCard))));
  EXPECT_FALSE(bench.rt->Owns(bench.rt->CtxOf(a)->shared(),
                              lxfi::Capability::Write(sb->card, sizeof(kern::SoundCard))));
}

TEST(SndLxfi, PlaybackCausesNoViolations) {
  Bench bench(/*isolated=*/true);
  kern::Module* m = bench.kernel->LoadModule(mods::SndIntel8x0ModuleDef());
  ASSERT_NE(m, nullptr);
  auto st = mods::GetSnd(*m);
  kern::GetSoundCore(bench.kernel.get())->Playback(st->card, 64);
  EXPECT_EQ(bench.rt->violation_count(), 0u);
}

}  // namespace
