// Core network stack and NIC simulation tests (kernel-side, no modules).
#include <gtest/gtest.h>

#include <cstring>

#include "src/kernel/kernel.h"
#include "src/kernel/net/netdevice.h"
#include "src/kernel/net/nicsim.h"
#include "src/kernel/net/skbuff.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

TEST(SkBuff, AllocPutFree) {
  kern::Kernel k;
  kern::SkBuff* skb = kern::AllocSkb(&k, 100, /*headroom=*/16);
  ASSERT_NE(skb, nullptr);
  EXPECT_EQ(skb->len, 0u);
  EXPECT_EQ(skb->data - skb->head, 16);
  uint8_t* p = kern::SkbPut(skb, 100);
  EXPECT_EQ(p, skb->data);
  EXPECT_EQ(skb->len, 100u);
  kern::FreeSkb(&k, skb);
}

TEST(SkBuff, PutPastCapacityPanics) {
  kern::Kernel k;
  kern::SkBuff* skb = kern::AllocSkb(&k, 32);
  kern::SkbPut(skb, 32);
  EXPECT_THROW(kern::SkbPut(skb, 1), kern::KernelPanic);
}

TEST(SkBuffQueue, FifoOrder) {
  kern::Kernel k;
  kern::SkBuffQueue q;
  kern::SkBuff* a = kern::AllocSkb(&k, 8);
  kern::SkBuff* b = kern::AllocSkb(&k, 8);
  kern::SkBuff* c = kern::AllocSkb(&k, 8);
  q.Push(a);
  q.Push(b);
  q.Push(c);
  EXPECT_EQ(q.count, 3u);
  EXPECT_EQ(q.Pop(), a);
  EXPECT_EQ(q.Pop(), b);
  EXPECT_EQ(q.Pop(), c);
  EXPECT_EQ(q.Pop(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(NetStack, ProtocolDispatchThroughKernelSlot) {
  Bench bench(/*isolated=*/true);
  kern::NetStack* stack = kern::GetNetStack(bench.kernel.get());
  int delivered = 0;
  stack->SetProtocolHandler(0x1234, [&](kern::SkBuff* skb) {
    ++delivered;
    kern::FreeSkb(bench.kernel.get(), skb);
  });
  kern::SkBuff* skb = kern::AllocSkb(bench.kernel.get(), 32);
  skb->protocol = 0x1234;
  stack->NetifRx(skb);
  EXPECT_EQ(delivered, 1);
  // Kernel-owned handler slot: the indirect call took the fast path.
  EXPECT_EQ(bench.rt->guards().count(lxfi::GuardType::kIndCallFull), 0u);
  EXPECT_GT(bench.rt->guards().count(lxfi::GuardType::kIndCallAll), 0u);
}

TEST(NetStack, UnhandledProtocolDropped) {
  kern::Kernel k;
  kern::NetStack* stack = kern::GetNetStack(&k);
  kern::SkBuff* skb = kern::AllocSkb(&k, 32);
  skb->protocol = 0x9999;
  stack->NetifRx(skb);  // freed internally; slab catches double-frees
  EXPECT_EQ(k.slab().IsLive(skb), false);
}

TEST(NetStack, DeferredBacklog) {
  kern::Kernel k;
  kern::NetStack* stack = kern::GetNetStack(&k);
  stack->set_defer_backlog(true);
  int delivered = 0;
  stack->SetProtocolHandler(7, [&](kern::SkBuff* skb) {
    ++delivered;
    kern::FreeSkb(&k, skb);
  });
  for (int i = 0; i < 5; ++i) {
    kern::SkBuff* skb = kern::AllocSkb(&k, 16);
    skb->protocol = 7;
    stack->NetifRx(skb);
  }
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(stack->ProcessBacklog(3), 3);
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(stack->ProcessBacklog(), 2);
  EXPECT_EQ(delivered, 5);
}

TEST(NicHw, TxConsumesDescriptorsAndRaisesIrq) {
  kern::NicRegs regs;
  kern::NicTxDesc ring[4];
  uint8_t buf[64] = {0x11};
  ring[0].buf_addr = reinterpret_cast<uint64_t>(buf);
  ring[0].len = 64;
  regs.tdba = reinterpret_cast<uint64_t>(ring);
  regs.tdlen = 4;
  regs.tdt = 1;

  kern::NicHw hw(&regs);
  int frames = 0;
  uint32_t irqs = 0;
  hw.SetTxSink([&](const uint8_t* f, uint16_t len) { frames += len == 64 ? 1 : 0; });
  hw.SetIrqRaiser([&](uint32_t cause) { irqs |= cause; });
  EXPECT_EQ(hw.ProcessTx(), 1);
  EXPECT_EQ(frames, 1);
  EXPECT_EQ(irqs & kern::kNicIntTxDone, kern::kNicIntTxDone);
  EXPECT_EQ(regs.tdh, 1u);
  EXPECT_TRUE(ring[0].status & kern::kNicDescDone);
  // Idempotent when caught up.
  EXPECT_EQ(hw.ProcessTx(), 0);
}

TEST(NicHw, RxFillsDescriptorsAndDropsWhenFull) {
  kern::NicRegs regs;
  kern::NicRxDesc ring[4];
  uint8_t bufs[4][128];
  for (int i = 0; i < 4; ++i) {
    ring[i].buf_addr = reinterpret_cast<uint64_t>(bufs[i]);
  }
  regs.rdba = reinterpret_cast<uint64_t>(ring);
  regs.rdlen = 4;
  regs.rdt = 3;  // driver published 3 descriptors

  kern::NicHw hw(&regs);
  uint8_t frame[100] = {0xaa};
  EXPECT_TRUE(hw.InjectRx(frame, 100, /*coalesce=*/true));
  EXPECT_TRUE(hw.InjectRx(frame, 100, /*coalesce=*/true));
  EXPECT_TRUE(hw.InjectRx(frame, 100, /*coalesce=*/true));
  // Ring exhausted (rdh == rdt).
  EXPECT_FALSE(hw.InjectRx(frame, 100, /*coalesce=*/true));
  EXPECT_EQ(hw.rx_drops(), 1u);
  EXPECT_EQ(bufs[0][0], 0xaa);
  EXPECT_EQ(ring[0].len, 100);
}

TEST(NicHw, CoalescedIrqFiresOnceOnFlush) {
  kern::NicRegs regs;
  kern::NicRxDesc ring[8];
  uint8_t bufs[8][64];
  for (int i = 0; i < 8; ++i) {
    ring[i].buf_addr = reinterpret_cast<uint64_t>(bufs[i]);
  }
  regs.rdba = reinterpret_cast<uint64_t>(ring);
  regs.rdlen = 8;
  regs.rdt = 7;
  kern::NicHw hw(&regs);
  int irqs = 0;
  hw.SetIrqRaiser([&](uint32_t) { ++irqs; });
  uint8_t frame[32] = {};
  for (int i = 0; i < 5; ++i) {
    hw.InjectRx(frame, 32, /*coalesce=*/true);
  }
  EXPECT_EQ(irqs, 0);
  hw.FlushRxIrq();
  EXPECT_EQ(irqs, 1);
  hw.FlushRxIrq();  // nothing pending
  EXPECT_EQ(irqs, 1);
}

TEST(NetDevice, RegisterAssignsIfindexAndOpens) {
  Bench bench(/*isolated=*/false);
  kern::NetStack* stack = kern::GetNetStack(bench.kernel.get());
  kern::NetDevice* dev = kern::AllocEtherdev(bench.kernel.get(), 64);
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(stack->RegisterNetdev(dev), 0);
  EXPECT_GT(dev->ifindex, 0);
  EXPECT_TRUE(dev->up);
  EXPECT_EQ(stack->DevByIndex(dev->ifindex), dev);
  stack->UnregisterNetdev(dev);
  EXPECT_EQ(stack->DevByIndex(dev->ifindex), nullptr);
}

}  // namespace
