// Device-mapper module tests: dm-zero, dm-crypt, dm-snapshot semantics and
// per-device principal isolation, on stock and isolated kernels.
#include <gtest/gtest.h>

#include <cstring>

#include "src/kernel/block/block.h"
#include "src/kernel/kernel.h"
#include "src/modules/dm/dm_modules.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

class DmTest : public ::testing::TestWithParam<bool> {
 protected:
  DmTest() : bench_(GetParam()) {
    block_ = kern::GetBlockLayer(bench_.kernel.get());
    origin_ = block_->CreateRamDisk("disk0", 64);
    cow_ = block_->CreateRamDisk("cowdev0", 64);
  }

  int Io(kern::BlockDevice* dev, uint64_t sector, uint8_t* buf, uint32_t size, bool write) {
    kern::Bio bio;
    bio.sector = sector;
    bio.size = size;
    bio.data = buf;
    bio.write = write;
    return block_->SubmitBio(dev, &bio);
  }

  Bench bench_;
  kern::BlockLayer* block_ = nullptr;
  kern::BlockDevice* origin_ = nullptr;
  kern::BlockDevice* cow_ = nullptr;
};

TEST_P(DmTest, RamDiskReadWrite) {
  uint8_t out[512];
  std::memset(out, 0x42, sizeof(out));
  EXPECT_EQ(Io(origin_, 3, out, sizeof(out), true), 0);
  uint8_t in[512] = {};
  EXPECT_EQ(Io(origin_, 3, in, sizeof(in), false), 0);
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST_P(DmTest, RamDiskRejectsOutOfRange) {
  uint8_t buf[512];
  EXPECT_NE(Io(origin_, 64, buf, sizeof(buf), true), 0);
}

TEST_P(DmTest, DmZeroReadsZerosAndSwallowsWrites) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::DmZeroModuleDef()), nullptr);
  kern::BlockDevice* zero = block_->DmCreate("zero0", "zero", origin_, "");
  ASSERT_NE(zero, nullptr);
  uint8_t buf[512];
  std::memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(Io(zero, 0, buf, sizeof(buf), true), 0);  // write discarded
  std::memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(Io(zero, 0, buf, sizeof(buf), false), 0);
  for (size_t i = 0; i < sizeof(buf); ++i) {
    ASSERT_EQ(buf[i], 0) << "byte " << i;
  }
  // The origin was never touched.
  uint8_t origin_data[512];
  EXPECT_EQ(Io(origin_, 0, origin_data, sizeof(origin_data), false), 0);
  EXPECT_EQ(origin_data[0], 0);
}

TEST_P(DmTest, DmCryptRoundtripAndCiphertextOnDisk) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::DmCryptModuleDef()), nullptr);
  kern::BlockDevice* crypt = block_->DmCreate("crypt0", "crypt", origin_, "secretkey");
  ASSERT_NE(crypt, nullptr);
  uint8_t plain[1024];
  for (size_t i = 0; i < sizeof(plain); ++i) {
    plain[i] = static_cast<uint8_t>(i);
  }
  uint8_t buf[1024];
  std::memcpy(buf, plain, sizeof(buf));
  EXPECT_EQ(Io(crypt, 8, buf, sizeof(buf), true), 0);

  // On-disk bytes must differ from the plaintext (it is "encrypted").
  uint8_t disk[1024];
  EXPECT_EQ(Io(origin_, 8, disk, sizeof(disk), false), 0);
  EXPECT_NE(std::memcmp(disk, plain, sizeof(disk)), 0);

  // Reading back through the crypt device restores the plaintext.
  uint8_t back[1024] = {};
  EXPECT_EQ(Io(crypt, 8, back, sizeof(back), false), 0);
  EXPECT_EQ(std::memcmp(back, plain, sizeof(back)), 0);
}

TEST_P(DmTest, DmCryptDifferentKeysDifferentCiphertext) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::DmCryptModuleDef()), nullptr);
  kern::BlockDevice* disk2 = block_->CreateRamDisk("disk2", 64);
  kern::BlockDevice* a = block_->DmCreate("ca", "crypt", origin_, "keyA");
  kern::BlockDevice* b = block_->DmCreate("cb", "crypt", disk2, "keyB");
  uint8_t data[512] = {1, 2, 3, 4};
  uint8_t buf[512];
  std::memcpy(buf, data, sizeof(buf));
  Io(a, 0, buf, sizeof(buf), true);
  std::memcpy(buf, data, sizeof(buf));
  Io(b, 0, buf, sizeof(buf), true);
  uint8_t da[512], db[512];
  Io(origin_, 0, da, sizeof(da), false);
  Io(disk2, 0, db, sizeof(db), false);
  EXPECT_NE(std::memcmp(da, db, sizeof(da)), 0);
}

TEST_P(DmTest, DmSnapshotCopiesBeforeWrite) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::DmSnapshotModuleDef()), nullptr);
  // Seed the origin.
  uint8_t seed[512];
  std::memset(seed, 0xaa, sizeof(seed));
  Io(origin_, 0, seed, sizeof(seed), true);

  kern::BlockDevice* snap = block_->DmCreate("snap0", "snapshot", origin_, "cowdev0");
  ASSERT_NE(snap, nullptr);

  // First write to chunk 0 triggers the copy-on-write.
  uint8_t update[512];
  std::memset(update, 0xbb, sizeof(update));
  EXPECT_EQ(Io(snap, 0, update, sizeof(update), true), 0);

  // The COW device preserved the original bytes.
  uint8_t cow_data[512];
  EXPECT_EQ(Io(cow_, 0, cow_data, sizeof(cow_data), false), 0);
  EXPECT_EQ(cow_data[0], 0xaa);
  // The origin carries the new data (the target remaps writes to it).
  uint8_t origin_data[512];
  EXPECT_EQ(Io(origin_, 0, origin_data, sizeof(origin_data), false), 0);
  EXPECT_EQ(origin_data[0], 0xbb);

  // A second write to the same chunk does not re-copy.
  kern::DmTarget* target = block_->TargetOf(snap);
  auto* priv = static_cast<mods::DmSnapshotTarget*>(target->private_data);
  uint64_t copies = priv->cow_copies;
  EXPECT_EQ(Io(snap, 0, update, sizeof(update), true), 0);
  EXPECT_EQ(priv->cow_copies, copies);
}

TEST_P(DmTest, DmSnapshotUnknownCowDeviceFailsCtr) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::DmSnapshotModuleDef()), nullptr);
  EXPECT_EQ(block_->DmCreate("snapX", "snapshot", origin_, "no-such-device"), nullptr);
}

TEST_P(DmTest, DmRemoveRunsDtr) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::DmCryptModuleDef()), nullptr);
  kern::BlockDevice* crypt = block_->DmCreate("crypt0", "crypt", origin_, "k");
  ASSERT_NE(crypt, nullptr);
  block_->DmRemove(crypt);
  EXPECT_EQ(block_->FindDevice("crypt0"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, DmTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

// --- per-device principal isolation (the §2.1 scenario) ------------------------

TEST(DmPrincipals, TargetsAreSeparatePrincipalsWithDisjointRefs) {
  Bench bench(/*isolated=*/true);
  kern::BlockLayer* block = kern::GetBlockLayer(bench.kernel.get());
  kern::BlockDevice* sys = block->CreateRamDisk("sda", 64);
  kern::BlockDevice* usb = block->CreateRamDisk("sdb", 64);
  kern::Module* m = bench.kernel->LoadModule(mods::DmCryptModuleDef());
  ASSERT_NE(m, nullptr);
  kern::BlockDevice* csys = block->DmCreate("crypt-sys", "crypt", sys, "k1");
  kern::BlockDevice* cusb = block->DmCreate("crypt-usb", "crypt", usb, "k2");
  ASSERT_NE(csys, nullptr);
  ASSERT_NE(cusb, nullptr);

  lxfi::ModuleCtx* ctx = bench.rt->CtxOf(m);
  auto principal_of = [&](kern::BlockDevice* dev) {
    return ctx->Lookup(reinterpret_cast<uintptr_t>(block->TargetOf(dev)));
  };
  lxfi::Principal* psys = principal_of(csys);
  lxfi::Principal* pusb = principal_of(cusb);
  ASSERT_NE(psys, nullptr);
  ASSERT_NE(pusb, nullptr);
  EXPECT_NE(psys, pusb);
  EXPECT_TRUE(bench.rt->Owns(pusb, lxfi::Capability::Ref("block_device", usb)));
  EXPECT_FALSE(bench.rt->Owns(pusb, lxfi::Capability::Ref("block_device", sys)))
      << "the USB mapping must not be able to name the system disk";
}

TEST(DmPrincipals, SnapshotGetsRefOnlyForItsCow) {
  Bench bench(/*isolated=*/true);
  kern::BlockLayer* block = kern::GetBlockLayer(bench.kernel.get());
  kern::BlockDevice* origin = block->CreateRamDisk("o", 64);
  kern::BlockDevice* cow1 = block->CreateRamDisk("cow1", 64);
  kern::BlockDevice* cow2 = block->CreateRamDisk("cow2", 64);
  kern::Module* m = bench.kernel->LoadModule(mods::DmSnapshotModuleDef());
  kern::BlockDevice* snap = block->DmCreate("s1", "snapshot", origin, "cow1");
  ASSERT_NE(snap, nullptr);
  lxfi::Principal* p = bench.rt->CtxOf(m)->Lookup(
      reinterpret_cast<uintptr_t>(block->TargetOf(snap)));
  EXPECT_TRUE(bench.rt->Owns(p, lxfi::Capability::Ref("block_device", cow1)));
  EXPECT_FALSE(bench.rt->Owns(p, lxfi::Capability::Ref("block_device", cow2)));
}

}  // namespace
