// Per-principal partitioned heaps (IA2-style arenas): kmalloc routing into
// the caller's arena slot, the store-guard span fast path, sealed-arena
// fail-closed semantics, bulk teardown on module unload, deterministic slot
// layout, and the differential fast-vs-slow identity. Runs under ASan/LSan
// and UBSan in CI (the 10k-allocation unload test is the leak canary).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/mem.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"
#include "tests/testbench.h"

namespace {

using lxfi::Capability;
using lxfitest::Bench;

// Scratch module with the full allocation import surface.
struct ScratchState {
  kern::Module* m = nullptr;
  std::function<void*(size_t)> kmalloc;
  std::function<void*(void*, size_t)> krealloc;
  std::function<void(void*)> kfree;
  std::function<size_t(const void*)> ksize;
};

kern::ModuleDef ScratchDef(std::shared_ptr<ScratchState> st, const char* name = "scratch") {
  kern::ModuleDef def;
  def.name = name;
  def.data_size = 128;
  def.imports = {"kmalloc", "krealloc", "kfree", "ksize", "printk"};
  def.init = [st](kern::Module& m) -> int {
    st->m = &m;
    st->kmalloc = lxfi::GetImport<void*, size_t>(m, "kmalloc");
    st->krealloc = lxfi::GetImport<void*, void*, size_t>(m, "krealloc");
    st->kfree = lxfi::GetImport<void, void*>(m, "kfree");
    st->ksize = lxfi::GetImport<size_t, const void*>(m, "ksize");
    return 0;
  };
  return def;
}

lxfi::RuntimeOptions PartitionedOptions() {
  lxfi::RuntimeOptions options;
  options.partitioned_heaps = true;
  return options;
}

class ArenaHeapTest : public ::testing::Test {
 protected:
  ArenaHeapTest()
      : bench_(/*isolated=*/true, PartitionedOptions()), st_(std::make_shared<ScratchState>()) {
    module_ = bench_.kernel->LoadModule(ScratchDef(st_));
    EXPECT_NE(module_, nullptr);
  }

  lxfi::Runtime& rt() { return *bench_.rt; }
  kern::SlabAllocator& slab() { return bench_.kernel->slab(); }
  lxfi::ModuleCtx* ctx() { return rt().CtxOf(module_); }
  lxfi::Principal* shared() { return ctx()->shared(); }

  bool InArena(lxfi::Principal* p, const void* ptr) {
    auto addr = reinterpret_cast<uintptr_t>(ptr);
    return addr >= p->arena_lo() && addr < p->arena_hi();
  }

  Bench bench_;
  std::shared_ptr<ScratchState> st_;
  kern::Module* module_ = nullptr;
};

TEST_F(ArenaHeapTest, KmallocRoutesIntoOwnArenaSlot) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  void* p = st_->kmalloc(96);
  ASSERT_NE(p, nullptr);
  // First allocation published the arena span; the object lies inside it.
  ASSERT_TRUE(shared()->has_arena());
  EXPECT_NE(shared()->heap_partition(), lxfi::Principal::kNoHeap);
  EXPECT_TRUE(InArena(shared(), p));
  EXPECT_EQ(slab().PartitionOf(p), shared()->heap_partition());
  // Introspection stays truthful through the partition path.
  EXPECT_EQ(slab().AllocSize(p), 96u);
  EXPECT_EQ(st_->ksize(p), 128u);
  // The span is one whole slot, not the object.
  EXPECT_EQ(shared()->arena_hi() - shared()->arena_lo(), lxfi::Runtime::kHeapSlotBytes);
}

TEST_F(ArenaHeapTest, StoreGuardResolvesOnArenaSpan) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  auto* p = static_cast<uint64_t*>(st_->kmalloc(64));
  ASSERT_NE(p, nullptr);
  uint64_t span_hits_before = shared()->ctx().arena_span_hits;
  lxfi::Store(*module_, p, uint64_t{41});
  lxfi::Store(*module_, p + 1, uint64_t{42});
  lxfi::Store(*module_, p + 7, uint64_t{43});
  EXPECT_EQ(p[0], 41u);
  EXPECT_EQ(p[7], 43u);
  // Every one of those stores resolved on the span compare, before the
  // memo and before any table probe.
  EXPECT_EQ(shared()->ctx().arena_span_hits, span_hits_before + 3);
  // Out-of-arena stores still violate (kernel-heap victim).
  auto* victim = static_cast<uint64_t*>(slab().Alloc(sizeof(uint64_t)));
  EXPECT_THROW(lxfi::Store(*module_, victim, uint64_t{0}), lxfi::LxfiViolation);
  EXPECT_EQ(rt().violations().back().kind, lxfi::ViolationKind::kWrite);
}

// Differential reference: the capability slow path (Runtime::Owns walks the
// same ownership chains WriteTableProbe uses) must agree with the memoized
// fast path on every allow/deny decision while the arena is unsealed.
TEST_F(ArenaHeapTest, FastAndSlowPathsAgreeOnAllowAndDeny) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  auto* own = static_cast<uint8_t*>(st_->kmalloc(200));
  ASSERT_NE(own, nullptr);
  void* kernel_obj = slab().Alloc(64);
  uintptr_t own_addr = reinterpret_cast<uintptr_t>(own);

  struct Probe {
    uintptr_t addr;
    size_t size;
  };
  std::vector<Probe> probes = {
      {own_addr, 8},                                     // own object head
      {own_addr + 192, 8},                               // own object tail
      {shared()->arena_lo(), 16},                        // arena slot base (unallocated)
      {shared()->arena_hi() - 32, 32},                   // arena slot tail
      {shared()->arena_hi() - 16, 32},                   // straddles the span end
      {reinterpret_cast<uintptr_t>(kernel_obj), 8},      // foreign heap object
      {reinterpret_cast<uintptr_t>(kernel_obj) + 8, 4},  // foreign, interior
      {0x41000, 8},                                      // unmapped address
  };
  for (const Probe& probe : probes) {
    bool fast = rt().OwnsWriteFast(shared(), probe.addr, probe.size);
    bool slow = rt().Owns(shared(), Capability::Write(probe.addr, probe.size));
    EXPECT_EQ(fast, slow) << "addr=" << std::hex << probe.addr << " size=" << probe.size;
  }
}

TEST_F(ArenaHeapTest, SealedArenaFailsClosedAndAttributes) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  auto* p = static_cast<uint64_t*>(st_->kmalloc(64));
  ASSERT_NE(p, nullptr);
  lxfi::Store(*module_, p, uint64_t{7});  // works before the seal

  rt().SealPrincipalHeap(shared());
  EXPECT_TRUE(shared()->arena_sealed());

  // The principal's own store into its own allocation now fails closed —
  // before the memo or table can resurrect the per-object grant — and the
  // violation is attributed to the sealed principal.
  EXPECT_THROW(lxfi::Store(*module_, p, uint64_t{8}), lxfi::LxfiViolation);
  EXPECT_EQ(p[0], 7u) << "the store must not land";
  const auto v = rt().violations().back();
  EXPECT_EQ(v.kind, lxfi::ViolationKind::kWrite);
  EXPECT_NE(v.details.find("sealed heap partition"), std::string::npos) << v.details;
  EXPECT_NE(v.details.find("scratch"), std::string::npos) << v.details;

  // Fresh allocations from the quarantined heap fail.
  EXPECT_EQ(rt().PartitionedAlloc(32), nullptr);
  // Quarantine is total: even the module's own kfree of a sealed-span
  // object fails closed (the transfer's source check no longer passes) —
  // the objects stay put until bulk teardown reclaims the whole slot.
  EXPECT_THROW(st_->kfree(p), lxfi::LxfiViolation);
  EXPECT_TRUE(slab().IsLive(p));
  // Non-heap capabilities are untouched: module .data stays writable.
  auto* data = reinterpret_cast<uint64_t*>(module_->data());
  lxfi::Store(*module_, data, uint64_t{1});
  EXPECT_EQ(*data, 1u);
  // And the quarantined slot is still reclaimed in bulk on unload.
  size_t live_before = slab().live_objects();
  bench_.kernel->UnloadModule(module_);
  module_ = nullptr;
  EXPECT_EQ(slab().live_objects(), live_before - 1);
}

TEST_F(ArenaHeapTest, SealKillsMemoizedAllows) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  auto* p = static_cast<uint64_t*>(st_->kmalloc(64));
  ASSERT_NE(p, nullptr);
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  EXPECT_TRUE(rt().OwnsWriteFast(shared(), addr, 8));
  rt().SealPrincipalHeap(shared());
  // Span check fails closed, and the epoch bump means no stale memo can
  // answer for the span either.
  EXPECT_FALSE(rt().OwnsWriteFast(shared(), addr, 8));
}

// The tentpole teardown property: unloading a module with thousands of live
// allocations is one ClearRange + one partition sweep — zero per-object
// RevokeEverywhere calls — and leaves no live objects and no stale
// writer-set pages behind. Under ASan/LSan this is also the leak canary.
TEST_F(ArenaHeapTest, UnloadTearsDownTenThousandAllocationsInBulk) {
  constexpr int kAllocs = 10000;
  size_t live_before = slab().live_objects();
  uintptr_t lo = 0, hi = 0;
  std::vector<uintptr_t> sample;
  {
    lxfi::ScopedPrincipal as_module(&rt(), shared());
    for (int i = 0; i < kAllocs; ++i) {
      void* p = st_->kmalloc(24);
      ASSERT_NE(p, nullptr) << "allocation " << i;
      if (i % 1000 == 0) {
        sample.push_back(reinterpret_cast<uintptr_t>(p));
      }
    }
    lo = shared()->arena_lo();
    hi = shared()->arena_hi();
  }
  ASSERT_NE(lo, 0u);
  int pid = shared()->heap_partition();
  EXPECT_EQ(slab().partition_live_objects(pid), static_cast<size_t>(kAllocs));
  EXPECT_EQ(slab().live_objects(), live_before + kAllocs);
  // The kmalloc transfer annotations marked arena pages module-written.
  EXPECT_FALSE(rt().writer_set().Empty(sample.front()));

  uint64_t revokes_before = rt().revoke_everywhere_count();
  bench_.kernel->UnloadModule(module_);
  module_ = nullptr;

  // Bulk teardown: no per-object revocation happened across the unload.
  EXPECT_EQ(rt().revoke_everywhere_count(), revokes_before);
  // Every live object inside the slot was reclaimed in one sweep.
  EXPECT_EQ(slab().live_objects(), live_before);
  EXPECT_FALSE(slab().PartitionSpan(pid, &lo, &hi)) << "partition must be torn down";
  // No stale writer-set pages anywhere in the old span.
  for (uintptr_t addr : sample) {
    EXPECT_TRUE(rt().writer_set().Empty(addr));
  }
}

// Deterministic layout: two kernels with the same seed hand identical slot
// offsets to the same load order; a different seed rotates placement to a
// predictable slot. This is what keeps bench ablations and DumpState golden
// output reproducible with no ASLR-dependent addresses.
TEST(ArenaLayout, DeterministicAcrossKernelsAndSeeds) {
  auto first_offset = [](uint64_t seed) {
    Bench bench(/*isolated=*/true);
    bench.rt->EnablePartitionedHeaps(lxfi::Runtime::kHeapRegionBytes,
                                     lxfi::Runtime::kHeapSlotBytes, seed);
    auto st = std::make_shared<ScratchState>();
    kern::Module* m = bench.kernel->LoadModule(ScratchDef(st));
    EXPECT_NE(m, nullptr);
    lxfi::ModuleCtx* mc = bench.rt->CtxOf(m);
    lxfi::ScopedPrincipal as_module(bench.rt.get(), mc->shared());
    EXPECT_NE(st->kmalloc(64), nullptr);
    return mc->shared()->arena_lo() - bench.kernel->slab().region_base();
  };
  uintptr_t a = first_offset(/*seed=*/0);
  uintptr_t b = first_offset(/*seed=*/0);
  EXPECT_EQ(a, b) << "same seed, same load order => same slot offsets";
  EXPECT_EQ(a, 0u) << "seed 0 hands out slot 0 first";
  EXPECT_EQ(first_offset(/*seed=*/3), 3 * lxfi::Runtime::kHeapSlotBytes)
      << "seed rotates deterministically";
}

TEST(ArenaLayout, DumpStateReportsSpansAsStableOffsets) {
  Bench bench(/*isolated=*/true, PartitionedOptions());
  auto st = std::make_shared<ScratchState>();
  kern::Module* m = bench.kernel->LoadModule(ScratchDef(st));
  ASSERT_NE(m, nullptr);
  lxfi::ModuleCtx* mc = bench.rt->CtxOf(m);
  {
    lxfi::ScopedPrincipal as_module(bench.rt.get(), mc->shared());
    ASSERT_NE(st->kmalloc(64), nullptr);
  }
  std::string dump = bench.rt->DumpState();
  // Offset-relative (golden-friendly), not an absolute host address.
  EXPECT_NE(dump.find("heap partition: [+0, +0x100000)"), std::string::npos) << dump;
  bench.rt->SealPrincipalHeap(mc->shared());
  dump = bench.rt->DumpState();
  EXPECT_NE(dump.find("heap partition: [+0, +0x100000) sealed"), std::string::npos) << dump;
}

TEST_F(ArenaHeapTest, DropPrincipalRecyclesEmptySlotLifo) {
  const auto* name = reinterpret_cast<const void*>(0x5150);
  lxfi::Principal* inst = ctx()->GetOrCreate(reinterpret_cast<uintptr_t>(name));
  void* p = nullptr;
  {
    lxfi::ScopedPrincipal as_inst(&rt(), inst);
    p = rt().PartitionedAlloc(64);
  }
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(inst->has_arena());
  uintptr_t inst_lo = inst->arena_lo();
  int pid = inst->heap_partition();
  slab().Free(p);
  rt().DropPrincipal(module_, name);
  // The slot was empty at drop time: partition torn down, writer-set pages
  // cleared, and the slot goes back on the free list.
  uintptr_t lo = 0, hi = 0;
  EXPECT_FALSE(slab().PartitionSpan(pid, &lo, &hi));
  // The next principal to touch the heap reuses the slot (LIFO recycle).
  lxfi::Principal* next = ctx()->GetOrCreate(0x5151);
  {
    lxfi::ScopedPrincipal as_next(&rt(), next);
    ASSERT_NE(rt().PartitionedAlloc(64), nullptr);
  }
  EXPECT_EQ(next->arena_lo(), inst_lo);
}

TEST_F(ArenaHeapTest, KreallocStaysInPartitionAndPreservesContents) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  auto* p = static_cast<uint8_t*>(st_->kmalloc(64));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 8; ++i) {
    lxfi::Store(*module_, p + i, static_cast<uint8_t>(i + 1));
  }
  auto* q = static_cast<uint8_t*>(st_->krealloc(p, 256));
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(InArena(shared(), q)) << "the grown object stays in the caller's arena";
  EXPECT_FALSE(slab().IsLive(p)) << "always-move: the old object is gone";
  EXPECT_EQ(slab().AllocSize(q), 256u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(q[i], i + 1);
  }
  // The grown object is writable through the guard (span covers it).
  lxfi::Store(*module_, q + 255, uint8_t{0xaa});
  EXPECT_EQ(q[255], 0xaa);
}

// Slot exhaustion degrades gracefully: overflow allocations come from the
// shared heap, stay guarded by their per-object grants, and both paths
// still agree on them.
TEST(ArenaOverflow, SlotExhaustionFallsBackToSharedHeap) {
  Bench bench(/*isolated=*/true);
  bench.rt->EnablePartitionedHeaps(/*region_bytes=*/128 << 10, /*slot_bytes=*/64 << 10);
  auto st = std::make_shared<ScratchState>();
  kern::Module* m = bench.kernel->LoadModule(ScratchDef(st));
  ASSERT_NE(m, nullptr);
  lxfi::ModuleCtx* mc = bench.rt->CtxOf(m);
  lxfi::ScopedPrincipal as_module(bench.rt.get(), mc->shared());
  std::vector<uint8_t*> overflow;
  for (int i = 0; i < 40; ++i) {  // 40 * 2 KiB > the 64 KiB slot
    auto* p = static_cast<uint8_t*>(st->kmalloc(2048));
    ASSERT_NE(p, nullptr) << "allocation must fall back, not fail";
    auto addr = reinterpret_cast<uintptr_t>(p);
    if (addr < mc->shared()->arena_lo() || addr >= mc->shared()->arena_hi()) {
      overflow.push_back(p);
    }
  }
  ASSERT_FALSE(overflow.empty()) << "the slot must have overflowed";
  // Overflow objects are still module-writable — via the per-object grant,
  // on the table path — and the differential decisions agree.
  lxfi::Store(*m, overflow.front(), uint8_t{5});
  EXPECT_EQ(*overflow.front(), 5);
  uintptr_t addr = reinterpret_cast<uintptr_t>(overflow.front());
  EXPECT_EQ(bench.rt->OwnsWriteFast(mc->shared(), addr, 8),
            bench.rt->Owns(mc->shared(), Capability::Write(addr, 8)));
}

// Cross-principal containment: a rogue module scribbling into another
// principal's arena hits neither its own span nor any grant — blocked on
// the capability slow path and attributed to the offender.
TEST(ArenaIsolation, RogueModuleScribbleIsBlockedAndAttributed) {
  Bench bench(/*isolated=*/true, PartitionedOptions());
  auto sa = std::make_shared<ScratchState>();
  auto sb = std::make_shared<ScratchState>();
  kern::Module* a = bench.kernel->LoadModule(ScratchDef(sa, "scratch_a"));
  kern::Module* b = bench.kernel->LoadModule(ScratchDef(sb, "scratch_b"));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  lxfi::ModuleCtx* ca = bench.rt->CtxOf(a);
  lxfi::ModuleCtx* cb = bench.rt->CtxOf(b);

  uint64_t* target = nullptr;
  {
    lxfi::ScopedPrincipal as_a(bench.rt.get(), ca->shared());
    target = static_cast<uint64_t*>(sa->kmalloc(64));
    ASSERT_NE(target, nullptr);
    lxfi::Store(*a, target, uint64_t{11});
  }
  {
    lxfi::ScopedPrincipal as_b(bench.rt.get(), cb->shared());
    ASSERT_NE(sb->kmalloc(64), nullptr);  // carve B's own slot
  }
  // The two modules got distinct slots.
  ASSERT_TRUE(ca->shared()->has_arena());
  ASSERT_TRUE(cb->shared()->has_arena());
  EXPECT_NE(ca->shared()->arena_lo(), cb->shared()->arena_lo());

  {
    lxfi::ScopedPrincipal as_b(bench.rt.get(), cb->shared());
    EXPECT_THROW(lxfi::Store(*b, target, uint64_t{0xdead}), lxfi::LxfiViolation);
  }
  EXPECT_EQ(*target, 11u) << "the rogue store must not land";
  const auto v = bench.rt->violations().back();
  EXPECT_EQ(v.kind, lxfi::ViolationKind::kWrite);
  EXPECT_NE(v.details.find("scratch_b"), std::string::npos)
      << "attributed to the offender: " << v.details;
}

// Option off (the default): no arena ever appears, and the span counter
// stays zero — the exploit suite's slab-adjacency assumptions hold.
TEST(ArenaDisabled, DefaultOptionsKeepSharedHeapBehavior) {
  Bench bench(/*isolated=*/true);
  auto st = std::make_shared<ScratchState>();
  kern::Module* m = bench.kernel->LoadModule(ScratchDef(st));
  ASSERT_NE(m, nullptr);
  lxfi::ModuleCtx* mc = bench.rt->CtxOf(m);
  lxfi::ScopedPrincipal as_module(bench.rt.get(), mc->shared());
  auto* p = static_cast<uint64_t*>(st->kmalloc(64));
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(mc->shared()->has_arena());
  lxfi::Store(*m, p, uint64_t{9});
  EXPECT_EQ(static_cast<uint64_t>(mc->shared()->ctx().arena_span_hits), 0u);
}

}  // namespace
