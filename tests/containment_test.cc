// Violation containment & module microreboot (ViolationPolicy::kQuarantine).
//
// A rogue filter's violation must become a bounded recovery sequence: the
// flight recorder attributes it, the offender's arena is sealed and its
// filter dropped from the live snapshot chain before any further dispatch,
// the module microreboots and serves again, and a re-violation inside the
// probation window trips the circuit breaker permanently — all while a
// concurrent healthy tenant completes with zero violations. The final test
// is the 3-CPU churn storm the TSan job soaks.
#include <gtest/gtest.h>

#include <string>

#include "src/eval/tenants.h"
#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/lxfi/containment.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/violation.h"
#include "src/modules/fsfilter/fsfilter.h"
#include "src/modules/ramfs/ramfs.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

lxfi::RuntimeOptions QuarantineOptions() {
  lxfi::RuntimeOptions options;
  options.policy = lxfi::ViolationPolicy::kQuarantine;
  options.partitioned_heaps = true;
  return options;
}

// Sentinel distinct from every errno a Stat can return.
constexpr int kViolated = -1000;

// Two tenants (mounts /mnt and /healthy, each with a mount-scoped filter)
// plus a victim filter stacked behind the evil one on /mnt.
struct ContainRig {
  explicit ContainRig(lxfi::ContainmentOptions copts = {})
      : bench(/*isolated=*/true, QuarantineOptions()),
        containment(bench.rt.get(), copts) {
    bench.rt->set_containment(&containment);
    vfs = kern::GetVfs(bench.kernel.get());
    fs_mod = bench.kernel->LoadModule(mods::RamfsModuleDef());
    sb = vfs->Mount("ramfs", "/mnt");
    healthy_sb = vfs->Mount("ramfs", "/healthy");
    evil_mod = LoadFilter("fsflt-evil", 0, "mnt");
    victim_mod = LoadFilter("fsflt-victim", 10, "mnt");
    healthy_mod = LoadFilter("fsflt-healthy", 0, "healthy");
  }

  kern::Module* LoadFilter(const char* name, int priority, const char* scope) {
    mods::FsFilterConfig cfg;
    cfg.module_name = name;
    cfg.filter_name = name;
    cfg.priority = priority;
    cfg.scope = scope;  // string literal: static lifetime
    return bench.kernel->LoadModule(mods::FsFilterModuleDef(cfg));
  }

  std::shared_ptr<mods::FsFilterState> Evil() { return mods::GetFsFilter(*evil_mod); }
  std::shared_ptr<mods::FsFilterState> Victim() { return mods::GetFsFilter(*victim_mod); }
  std::shared_ptr<mods::FsFilterState> Healthy() { return mods::GetFsFilter(*healthy_mod); }

  void ArmScribble() {
    Evil()->probe_target = &Victim()->priv->pre_count[0];
    Evil()->probe = mods::FsFilterProbe::kScribbleTarget;
  }

  // Stat through the filter chain; the Stat result, or kViolated.
  int Poke(const char* path) {
    try {
      kern::VfsStat st;
      return vfs->Stat(path, &st);
    } catch (const lxfi::LxfiViolation&) {
      return kViolated;
    }
  }

  Bench bench;
  lxfi::Containment containment;
  kern::Vfs* vfs = nullptr;
  kern::SuperBlock* sb = nullptr;
  kern::SuperBlock* healthy_sb = nullptr;
  kern::Module* fs_mod = nullptr;
  kern::Module* evil_mod = nullptr;
  kern::Module* victim_mod = nullptr;
  kern::Module* healthy_mod = nullptr;
};

// --- (a) + (b): attribution, sealing, snapshot drop ---------------------------

TEST(Containment, QuarantineSealsAttributesAndDropsFilter) {
  ContainRig rig;
  ASSERT_NE(rig.sb, nullptr);
  rig.ArmScribble();
  uint64_t healthy_pre = rig.Healthy()->pre_count(kern::VfsOp::kStat);

  EXPECT_EQ(rig.Poke("/mnt"), kViolated);

  // (a) attributed in the flight recorder.
  ASSERT_GE(rig.bench.rt->violation_count(), 1u);
  const auto v = rig.bench.rt->violations().back();
  EXPECT_EQ(v.kind, lxfi::ViolationKind::kWrite);
  EXPECT_NE(v.principal.find("fsflt-evil"), std::string::npos) << v.principal;
  EXPECT_NE(v.principal_id, 0u);
  EXPECT_EQ(rig.containment.quarantines(), 1u);
  EXPECT_EQ(rig.containment.HealthOf("fsflt-evil"), lxfi::ModuleHealth::kQuarantined);
  EXPECT_TRUE(rig.containment.HasPendingReboots());
  EXPECT_TRUE(rig.evil_mod->quarantined());
  EXPECT_FALSE(rig.victim_mod->quarantined());

  // (b) arena sealed...
  lxfi::Principal* evil_p = rig.bench.rt->CtxOf(rig.evil_mod)->shared();
  EXPECT_TRUE(evil_p->arena_sealed());
  // ...and the filter is out of the snapshot chain before further dispatch:
  // the probe is still armed, yet the next op runs clean and the evil
  // filter's counters stay frozen while the victim's advance.
  uint64_t evil_pre = rig.Evil()->pre_count(kern::VfsOp::kStat);
  uint64_t victim_pre = rig.Victim()->pre_count(kern::VfsOp::kStat);
  EXPECT_EQ(rig.Poke("/mnt"), 0);
  EXPECT_EQ(rig.Evil()->pre_count(kern::VfsOp::kStat), evil_pre);
  EXPECT_EQ(rig.Victim()->pre_count(kern::VfsOp::kStat), victim_pre + 1);

  // The healthy tenant never noticed.
  EXPECT_EQ(rig.Poke("/healthy"), 0);
  EXPECT_EQ(rig.Healthy()->pre_count(kern::VfsOp::kStat), healthy_pre + 1);
  EXPECT_EQ(rig.bench.rt->violation_count(), 1u);
}

// --- (c): microreboot restores service ----------------------------------------

TEST(Containment, MicrorebootRestoresService) {
  ContainRig rig;
  ASSERT_NE(rig.sb, nullptr);
  rig.ArmScribble();
  EXPECT_EQ(rig.Poke("/mnt"), kViolated);
  // Keep the shared module state across the reboot; the old Module object
  // dies inside the drain.
  auto evil_state = rig.Evil();
  kern::Module* old = rig.evil_mod;
  evil_state->probe = mods::FsFilterProbe::kNone;  // fix the fault, then reboot

  EXPECT_EQ(rig.containment.DrainPendingReboots(), 1u);

  kern::Module* fresh = rig.bench.kernel->FindModule("fsflt-evil");
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh, old);
  EXPECT_FALSE(fresh->quarantined());
  EXPECT_EQ(rig.containment.HealthOf("fsflt-evil"), lxfi::ModuleHealth::kProbation);
  EXPECT_EQ(rig.containment.RebootsOf("fsflt-evil"), 1u);
  EXPECT_EQ(rig.containment.reboots(), 1u);
  EXPECT_FALSE(rig.containment.HasPendingReboots());
  EXPECT_GT(rig.containment.backoff_ns(), 0u);

  // Serves again: the rebooted module's filter is back in the chain.
  uint64_t pre = evil_state->pre_count(kern::VfsOp::kStat);
  EXPECT_EQ(rig.Poke("/mnt"), 0);
  EXPECT_EQ(evil_state->pre_count(kern::VfsOp::kStat), pre + 1);
  EXPECT_EQ(rig.Poke("/healthy"), 0);
  EXPECT_EQ(rig.bench.rt->violation_count(), 1u);
}

// --- (d): circuit breaker on probation re-violation ---------------------------

TEST(Containment, CircuitBreakerRetiresProbationReViolator) {
  ContainRig rig;
  ASSERT_NE(rig.sb, nullptr);
  rig.ArmScribble();
  EXPECT_EQ(rig.Poke("/mnt"), kViolated);
  auto evil_state = rig.Evil();
  // Reboot with the fault NOT fixed: the probe state is shared across the
  // module's reloads, so the fresh instance violates on first dispatch.
  EXPECT_EQ(rig.containment.DrainPendingReboots(), 1u);
  EXPECT_EQ(rig.containment.HealthOf("fsflt-evil"), lxfi::ModuleHealth::kProbation);

  EXPECT_EQ(rig.Poke("/mnt"), kViolated);

  EXPECT_EQ(rig.containment.HealthOf("fsflt-evil"), lxfi::ModuleHealth::kRetired);
  EXPECT_EQ(rig.containment.retired(), 1u);
  EXPECT_EQ(rig.containment.quarantines(), 2u);
  EXPECT_FALSE(rig.containment.HasPendingReboots()) << "retired modules never reboot";
  EXPECT_EQ(rig.containment.DrainPendingReboots(), 0u);
  EXPECT_EQ(rig.containment.reboots(), 1u);

  // Permanently contained: the chain is clean and stays clean.
  uint64_t violations = rig.bench.rt->violation_count();
  EXPECT_EQ(rig.Poke("/mnt"), 0);
  EXPECT_EQ(rig.Poke("/mnt"), 0);
  EXPECT_EQ(rig.bench.rt->violation_count(), violations);
  EXPECT_EQ(rig.Poke("/healthy"), 0);
}

// --- satellite: administrative unload racing the quarantine -------------------

TEST(Containment, AdminUnloadRacingQuarantineIsIdempotent) {
  ContainRig rig;
  ASSERT_NE(rig.sb, nullptr);
  rig.ArmScribble();
  EXPECT_EQ(rig.Poke("/mnt"), kViolated);
  auto evil_state = rig.Evil();
  ASSERT_NE(evil_state->flt, nullptr);

  // Admin unload gets there before the drain. The exit_fn's unregister sees
  // -ENOENT (containment already dropped the registration) and must treat
  // that as done — no double teardown, no leaked snapshot entry.
  rig.bench.kernel->UnloadModule(rig.evil_mod);
  EXPECT_EQ(evil_state->flt, nullptr);
  EXPECT_EQ(rig.bench.kernel->FindModule("fsflt-evil"), nullptr);
  EXPECT_EQ(rig.Poke("/mnt"), 0) << "no stale chain entry may dispatch";

  // The pending microreboot still completes — it just has nothing to unload.
  evil_state->probe = mods::FsFilterProbe::kNone;
  EXPECT_EQ(rig.containment.DrainPendingReboots(), 1u);
  kern::Module* fresh = rig.bench.kernel->FindModule("fsflt-evil");
  ASSERT_NE(fresh, nullptr);
  uint64_t pre = evil_state->pre_count(kern::VfsOp::kStat);
  EXPECT_EQ(rig.Poke("/mnt"), 0);
  EXPECT_EQ(evil_state->pre_count(kern::VfsOp::kStat), pre + 1);
}

// --- fail-fast plumbing -------------------------------------------------------

// A quarantined filter still present in a chain snapshot fails the dispatch
// fast with -EIO (the window between the module flag and the snapshot drop).
TEST(Containment, QuarantinedFilterInSnapshotFailsFast) {
  ContainRig rig;
  ASSERT_NE(rig.sb, nullptr);
  rig.evil_mod->set_quarantined(true);  // flag only: no containment drop
  EXPECT_EQ(rig.Poke("/mnt"), -kern::kEio);
  rig.evil_mod->set_quarantined(false);
  EXPECT_EQ(rig.Poke("/mnt"), 0);
}

// Every VFS entry into a quarantined filesystem module fails fast with -EIO
// while open-file accounting still drains through Close.
TEST(Containment, QuarantinedFsModuleFailsFastEverywhere) {
  Bench bench(/*isolated=*/true, QuarantineOptions());
  kern::Vfs* vfs = kern::GetVfs(bench.kernel.get());
  kern::Module* fs_mod = bench.kernel->LoadModule(mods::RamfsModuleDef());
  ASSERT_NE(fs_mod, nullptr);
  ASSERT_NE(vfs->Mount("ramfs", "/mnt"), nullptr);
  int err = 0;
  kern::File* f = vfs->Open("/mnt/held", kern::kOCreate, &err);
  ASSERT_NE(f, nullptr);
  size_t open_before = vfs->open_files();

  fs_mod->set_quarantined(true);
  kern::VfsStat st;
  EXPECT_EQ(vfs->Stat("/mnt/held", &st), -kern::kEio);
  EXPECT_EQ(vfs->Open("/mnt/other", kern::kOCreate, &err), nullptr);
  EXPECT_EQ(vfs->Read(f, 0x1000, 8), -kern::kEio);
  EXPECT_EQ(vfs->Write(f, 0x1000, 8), -kern::kEio);
  EXPECT_EQ(vfs->Fsync(f), -kern::kEio);
  kern::VfsStatFs sfs;
  EXPECT_EQ(vfs->StatFs("/mnt", &sfs), -kern::kEio);
  EXPECT_EQ(vfs->Mount("ramfs", "/mnt2"), nullptr)
      << "a quarantined fstype must not accept new mounts";
  // Close still drains the accounting the forced unmount waits on (the
  // module's release hook is skipped).
  vfs->Close(f);
  EXPECT_EQ(vfs->open_files(), open_before - 1);
  fs_mod->set_quarantined(false);
}

// A filesystem module quarantine with open files defers its microreboot:
// the mount is busy until the handles drain, then the reboot completes and
// the filesystem mounts again.
TEST(Containment, FsModuleMicrorebootWaitsForBusyMounts) {
  Bench bench(/*isolated=*/true, QuarantineOptions());
  lxfi::Containment containment(bench.rt.get());
  bench.rt->set_containment(&containment);
  kern::Vfs* vfs = kern::GetVfs(bench.kernel.get());
  kern::Module* fs_mod = bench.kernel->LoadModule(mods::RamfsModuleDef());
  ASSERT_NE(fs_mod, nullptr);
  kern::SuperBlock* sb = vfs->Mount("ramfs", "/mnt");
  ASSERT_NE(sb, nullptr);
  int err = 0;
  kern::File* f = vfs->Open("/mnt/busy", kern::kOCreate, &err);
  ASSERT_NE(f, nullptr);

  // The mount principal violates (driven directly: the fs modules here are
  // benign, but containment must handle filesystem offenders the same way).
  lxfi::Principal* mount_p = bench.rt->CtxOf(fs_mod)->Lookup(reinterpret_cast<uintptr_t>(sb));
  ASSERT_NE(mount_p, nullptr);
  containment.OnViolation(mount_p, lxfi::ViolationKind::kWrite, 0);
  EXPECT_TRUE(fs_mod->quarantined());
  EXPECT_EQ(containment.HealthOf("ramfs"), lxfi::ModuleHealth::kQuarantined);

  // Busy mount: the drain must defer, not tear the superblock out from
  // under the open file.
  EXPECT_EQ(containment.DrainPendingReboots(), 0u);
  EXPECT_TRUE(containment.HasPendingReboots());
  ASSERT_NE(bench.kernel->FindModule("ramfs"), nullptr);

  vfs->Close(f);  // drains the accounting (release dispatch skipped)
  EXPECT_EQ(containment.DrainPendingReboots(), 1u);
  EXPECT_EQ(containment.HealthOf("ramfs"), lxfi::ModuleHealth::kProbation);
  EXPECT_EQ(vfs->mount_count(), 0u) << "the quarantined mount was force-unmounted";

  // The rebooted filesystem registers and mounts again.
  ASSERT_NE(vfs->FindFilesystem("ramfs"), nullptr);
  kern::SuperBlock* fresh_sb = vfs->Mount("ramfs", "/again");
  ASSERT_NE(fresh_sb, nullptr);
  kern::File* g = vfs->Open("/again/works", kern::kOCreate, &err);
  ASSERT_NE(g, nullptr);
  EXPECT_GT(vfs->Write(g, 0x1000, 16), 0);
  vfs->Close(g);
}

// --- the multi-tenant churn storm (the TSan soak target) ----------------------

TEST(Containment, TenantChurnStormUnderSmp) {
  eval::TenantsConfig cfg;
  cfg.tenants = 12;
  cfg.cpus = 3;
  cfg.files = 3;
  cfg.rounds = 2;
  cfg.rogue = 5;
  cfg.storm_loads = 6;
  eval::TenantsHarness h(cfg);
  eval::TenantsResult r = h.RunChurn();

  EXPECT_EQ(r.healthy_errors, 0u);
  EXPECT_EQ(r.healthy_violations, 0u);
  EXPECT_GT(r.healthy_ops, 0u);
  EXPECT_EQ(r.quarantines, 1u);
  EXPECT_EQ(r.reboots, 1u);
  EXPECT_EQ(r.retired, 0u);
  EXPECT_GT(r.rogue_recovered_ops, 0u) << "the rogue tenant must serve again";
  EXPECT_EQ(h.containment()->HealthOf(h.FilterName(cfg.rogue)),
            lxfi::ModuleHealth::kProbation);
  // Slot exhaustion across the tenant fleet is expected and must be
  // accounted (satellite: kArenaFallback instrumentation).
  EXPECT_GT(r.arena_fallbacks, 0u);
}

}  // namespace
