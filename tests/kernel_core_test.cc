// Kernel substrate tests: processes, symbol dispatch, uaccess, panic,
// interrupts, module loading basics.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/panic.h"
#include "src/lxfi/kernel_api.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

TEST(ProcessTable, CreateAndLookup) {
  kern::Kernel k;
  kern::Task* t = k.procs().CreateTask(1000);
  EXPECT_EQ(t->cred.uid, 1000u);
  EXPECT_EQ(k.procs().FindByPid(t->pid), t);
  EXPECT_TRUE(k.procs().IsHashed(t));
}

TEST(ProcessTable, TasksLiveInSlabMemory) {
  kern::Kernel k;
  kern::Task* t = k.procs().CreateTask(1);
  EXPECT_TRUE(k.slab().IsLive(t)) << "task_structs must be capability-addressable";
}

TEST(ProcessTable, DetachPidHidesButKeepsTask) {
  kern::Kernel k;
  kern::Task* t = k.procs().CreateTask(0);
  k.procs().DetachPid(t);
  EXPECT_EQ(k.procs().FindByPid(t->pid), nullptr);
  bool found = false;
  for (kern::Task* task : k.procs().all_tasks()) {
    found = found || task == t;
  }
  EXPECT_TRUE(found) << "detached tasks still exist (the rootkit asymmetry)";
}

TEST(ProcessTable, DoExitZeroWriteBug) {
  // CVE-2010-4258: do_exit writes a zero through clear_child_tid even when
  // it points into kernel memory.
  kern::Kernel k;
  kern::Task* t = k.procs().CreateTask(1000);
  auto* victim = static_cast<uintptr_t*>(k.slab().Alloc(sizeof(uintptr_t)));
  *victim = 0xdeadbeef;
  t->clear_child_tid = reinterpret_cast<uintptr_t>(victim);
  k.procs().DoExit(t);
  EXPECT_EQ(*victim, 0u);
  EXPECT_TRUE(t->exited);
}

TEST(Creds, PrepareAndCommit) {
  kern::Kernel k;
  kern::Task* t = k.procs().CreateTask(1000);
  kern::CommitCreds(t, kern::PrepareKernelCred());
  EXPECT_EQ(t->cred.uid, 0u);
  EXPECT_EQ(t->cred.euid, 0u);
}

TEST(FuncRegistry, InvokeRegisteredFunction) {
  kern::FuncRegistry reg;
  uintptr_t addr = reg.Register<int(int)>(kern::TextKind::kKernelText, "twice",
                                          [](int x) { return 2 * x; });
  EXPECT_EQ((reg.Invoke<int, int>(addr, 21)), 42);
}

TEST(FuncRegistry, WildJumpPanics) {
  kern::FuncRegistry reg;
  EXPECT_THROW((reg.Invoke<void>(0xdeadbeef)), kern::KernelPanic);
}

TEST(FuncRegistry, SignatureMismatchPanics) {
  kern::FuncRegistry reg;
  uintptr_t addr =
      reg.Register<int(int)>(kern::TextKind::kKernelText, "f", [](int x) { return x; });
  EXPECT_THROW((reg.Invoke<void>(addr)), kern::KernelPanic);
}

TEST(FuncRegistry, FixedAddressZeroForNullPageMapping) {
  kern::FuncRegistry reg;
  uintptr_t addr = reg.Register<int()>(kern::TextKind::kUserText, "nullpage",
                                       [] { return 7; }, 0, nullptr, /*fixed_addr=*/0);
  EXPECT_EQ(addr, 0u);
  EXPECT_EQ((reg.Invoke<int>(0)), 7);
}

TEST(FuncRegistry, AddressRangesAreDisjoint) {
  kern::FuncRegistry reg;
  uintptr_t k = reg.Register<void()>(kern::TextKind::kKernelText, "k", [] {});
  uintptr_t m = reg.Register<void()>(kern::TextKind::kModuleText, "m", [] {});
  uintptr_t u = reg.Register<void()>(kern::TextKind::kUserText, "u", [] {});
  EXPECT_GE(k, kern::kKernelTextBase);
  EXPECT_LT(k, kern::kModuleTextBase);
  EXPECT_GE(m, kern::kModuleTextBase);
  EXPECT_TRUE(kern::IsUserAddress(u));
}

TEST(SymbolTable, ExportAndFind) {
  kern::Kernel k;
  uintptr_t addr = k.ExportSymbol<int()>("answer", [] { return 42; });
  EXPECT_EQ(k.symtab().Find("answer"), addr);
  EXPECT_EQ(k.symtab().Find("nope"), 0u);
}

TEST(UserSpace, CheckedCopiesRespectBounds) {
  kern::UserSpace us;
  uint8_t data[16] = {1, 2, 3};
  EXPECT_EQ(us.CopyToUser(0x1000, data, sizeof(data)), 0);
  uint8_t back[16] = {};
  EXPECT_EQ(us.CopyFromUser(back, 0x1000, sizeof(back)), 0);
  EXPECT_EQ(back[2], 3);
  // Out-of-range user addresses fault.
  EXPECT_LT(us.CopyToUser(kern::kUserSpaceTop, data, 1), 0);
  EXPECT_LT(us.CopyFromUser(back, kern::kUserSpaceTop - 4, 16), 0);
}

TEST(UserSpace, UncheckedCopyScribblesKernelMemory) {
  kern::UserSpace us;
  uint64_t kernel_word = 1;
  uint64_t evil = 0x4141414141414141ull;
  us.CopyToUserUnchecked(reinterpret_cast<uintptr_t>(&kernel_word), &evil, sizeof(evil));
  EXPECT_EQ(kernel_word, evil) << "__copy_to_user has no access_ok — that's the bug";
}

TEST(Panic, HandlerRunsThenThrows) {
  bool handled = false;
  auto prev = kern::SetPanicHandler([&](const std::string&) { handled = true; });
  EXPECT_THROW(kern::Panic("test"), kern::KernelPanic);
  EXPECT_TRUE(handled);
  kern::SetPanicHandler(prev);
}

TEST(Kthreads, ContextsSwitch) {
  kern::Kernel k;
  kern::KthreadContext* boot = k.current();
  kern::KthreadContext* worker = k.CreateKthread();
  EXPECT_NE(boot, worker);
  k.SwitchTo(worker);
  EXPECT_EQ(k.current(), worker);
  kern::Task* t = k.procs().CreateTask(5);
  k.SetCurrentTask(t);
  EXPECT_EQ(k.current_task(), t);
  k.SwitchTo(boot);
  EXPECT_EQ(k.current_task(), nullptr);
}

TEST(Kthreads, InterruptDepthTracked) {
  kern::Kernel k;
  k.DeliverInterrupt([&] { EXPECT_EQ(k.current()->irq_depth, 1); });
  EXPECT_EQ(k.current()->irq_depth, 0);
}

TEST(ModuleLoader, SectionsAllocatedAndInitRuns) {
  Bench bench(/*isolated=*/false);
  bool init_ran = false;
  kern::ModuleDef def;
  def.name = "secmod";
  def.data_size = 100;
  def.rodata_size = 50;
  def.init = [&](kern::Module& m) -> int {
    init_ran = true;
    EXPECT_NE(m.data(), nullptr);
    EXPECT_NE(m.rodata(), nullptr);
    return 0;
  };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(init_ran);
  EXPECT_EQ(m->state(), kern::ModuleState::kLive);
  EXPECT_EQ(bench.kernel->FindModule("secmod"), m);
}

TEST(ModuleLoader, InitFailureUnwindsLoad) {
  Bench bench(/*isolated=*/true);
  kern::ModuleDef def;
  def.name = "failmod";
  def.imports = {"printk"};
  def.init = [](kern::Module&) { return -kern::kEnomem; };
  EXPECT_EQ(bench.kernel->LoadModule(std::move(def)), nullptr);
  EXPECT_EQ(bench.kernel->FindModule("failmod"), nullptr);
}

TEST(ModuleLoader, SectionInitAndRelocOrdering) {
  Bench bench(/*isolated=*/true);
  int stage = 0;
  kern::ModuleDef def;
  def.name = "ordmod";
  def.data_size = 16;
  def.imports = {"printk"};
  def.init_sections = [&](kern::Module&) {
    EXPECT_EQ(stage, 0);
    stage = 1;
  };
  def.patch_relocs = [&](kern::Module&) {
    EXPECT_EQ(stage, 1);
    stage = 2;
  };
  def.init = [&](kern::Module&) -> int {
    EXPECT_EQ(stage, 2);
    stage = 3;
    return 0;
  };
  ASSERT_NE(bench.kernel->LoadModule(std::move(def)), nullptr);
  EXPECT_EQ(stage, 3);
}

TEST(ModuleLoader, UnloadRunsExit) {
  Bench bench(/*isolated=*/true);
  bool exited = false;
  kern::ModuleDef def;
  def.name = "exmod";
  def.imports = {"printk"};
  def.init = [](kern::Module&) { return 0; };
  def.exit_fn = [&](kern::Module&) { exited = true; };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  bench.kernel->UnloadModule(m);
  EXPECT_TRUE(exited);
  EXPECT_EQ(m->state(), kern::ModuleState::kUnloaded);
  EXPECT_EQ(bench.kernel->FindModule("exmod"), nullptr);
}

}  // namespace
