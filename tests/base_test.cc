// Base-utility tests: arena, rng, stats, strings, hashing, clocks.
#include <gtest/gtest.h>

#include <set>

#include "src/base/arena.h"
#include "src/base/clock.h"
#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/string_util.h"

namespace {

TEST(Arena, AlignmentHonored) {
  lxfi::Arena arena(1 << 20);
  void* a = arena.Allocate(10, 16);
  void* b = arena.Allocate(10, 4096);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 4096, 0u);
  EXPECT_TRUE(arena.Contains(a));
  EXPECT_TRUE(arena.Contains(b));
}

TEST(Arena, ExhaustionReturnsNull) {
  lxfi::Arena arena(8 << 10);
  EXPECT_NE(arena.Allocate(4096), nullptr);
  EXPECT_EQ(arena.Allocate(64 << 10), nullptr);
}

TEST(Arena, ResetReclaims) {
  lxfi::Arena arena(8 << 10);
  arena.Allocate(4096);
  size_t used = arena.used();
  EXPECT_GT(used, 0u);
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_NE(arena.Allocate(4096), nullptr);
}

TEST(Rng, DeterministicPerSeed) {
  lxfi::Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  lxfi::Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    differs = differs || a2.Next() != c.Next();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundsRespected) {
  lxfi::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    uint64_t r = rng.Range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GeometricMeanRoughlyCalibrated) {
  lxfi::Rng rng(42);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.GeometricMean(8.0));
  }
  double mean = sum / kSamples;
  EXPECT_GT(mean, 6.5);
  EXPECT_LT(mean, 9.5);
}

TEST(RunningStat, Moments) {
  lxfi::RunningStat st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    st.Add(x);
  }
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
  EXPECT_NEAR(st.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(LatencyHistogram, QuantilesMonotone) {
  lxfi::LatencyHistogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Add(i * 10);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_LE(h.QuantileNs(0.5), h.QuantileNs(0.99));
  EXPECT_GT(h.mean_ns(), 0.0);
}

TEST(Percentile, ExactValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(lxfi::Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(lxfi::Percentile(v, 100), 10.0);
  EXPECT_NEAR(lxfi::Percentile(v, 50), 5.5, 1e-9);
}

TEST(StringUtil, SplitAndTrim) {
  auto parts = lxfi::SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(lxfi::TrimWhitespace("  hi \n"), "hi");
  EXPECT_EQ(lxfi::TrimWhitespace(""), "");
  EXPECT_TRUE(lxfi::StartsWith("pre(check)", "pre("));
  EXPECT_FALSE(lxfi::StartsWith("pr", "pre"));
}

TEST(StringUtil, FormatAndJoin) {
  EXPECT_EQ(lxfi::StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(lxfi::JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(lxfi::ToLowerAscii("AbC"), "abc");
}

TEST(Hash, Fnv1aKnownProperties) {
  EXPECT_NE(lxfi::Fnv1a64("a"), lxfi::Fnv1a64("b"));
  EXPECT_EQ(lxfi::Fnv1a64("lxfi"), lxfi::Fnv1a64("lxfi"));
  // Mix64 is a bijection-ish scrambler: distinct small inputs stay distinct.
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outs.insert(lxfi::Mix64(i));
  }
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(Clock, MonotonicAdvances) {
  uint64_t a = lxfi::MonotonicNowNs();
  uint64_t b = lxfi::MonotonicNowNs();
  EXPECT_GE(b, a);
}

TEST(SimClock, ExplicitAdvance) {
  lxfi::SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now_ns(), 150u);
  clock.Reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

}  // namespace
