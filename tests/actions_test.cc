// Annotation-action semantics (Figure 3): copy/transfer/check in pre and
// post positions, conditionals, capability iterators, and principal
// selection — exercised through purpose-built annotated interfaces.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"
#include "tests/testbench.h"

namespace {

using lxfi::Capability;
using lxfitest::Bench;

// Test rig: a kernel exporting purpose-built annotated functions and a
// module importing them.
class ActionsTest : public ::testing::Test {
 protected:
  ActionsTest() : bench_(/*isolated=*/true) {}

  void SetUp() override {
    kern::Kernel* k = bench_.kernel.get();
    lxfi::Runtime* rt = bench_.rt.get();
    // Kernel-side objects handed out by the test APIs.
    obj_ = k->slab().Alloc(64);

    k->ExportSymbol<void*(int)>("give_object", [this](int ok) -> void* {
      return ok != 0 ? obj_ : nullptr;
    });
    ASSERT_TRUE(rt->annotations()
                    .Register("give_object", {"ok"},
                              "post(if (return != 0) copy(write, return, 64))")
                    .ok());

    k->ExportSymbol<int(void*)>("take_object", [](void*) { return 0; });
    ASSERT_TRUE(rt->annotations()
                    .Register("take_object", {"obj"}, "pre(transfer(write, obj, 64))")
                    .ok());

    k->ExportSymbol<int(void*)>("take_object_maybe", [this](void* p) -> int {
      return fail_next_ ? -1 : 0;
    });
    ASSERT_TRUE(rt->annotations()
                    .Register("take_object_maybe", {"obj"},
                              "pre(transfer(write, obj, 64)) "
                              "post(if (return < 0) transfer(write, obj, 64))")
                    .ok());

    k->ExportSymbol<void(void*)>("need_ref", [](void*) {});
    ASSERT_TRUE(rt->annotations()
                    .Register("need_ref", {"obj"}, "pre(check(ref(struct widget), obj))")
                    .ok());

    kern::ModuleDef def;
    def.name = "actionmod";
    def.imports = {"give_object", "take_object", "take_object_maybe", "need_ref", "printk"};
    def.init = [this](kern::Module& m) -> int {
      module_ = &m;
      give_object_ = lxfi::GetImport<void*, int>(m, "give_object");
      take_object_ = lxfi::GetImport<int, void*>(m, "take_object");
      take_object_maybe_ = lxfi::GetImport<int, void*>(m, "take_object_maybe");
      need_ref_ = lxfi::GetImport<void, void*>(m, "need_ref");
      return 0;
    };
    ASSERT_NE(bench_.kernel->LoadModule(std::move(def)), nullptr);
  }

  lxfi::Runtime& rt() { return *bench_.rt; }
  lxfi::Principal* shared() { return rt().CtxOf(module_)->shared(); }

  Bench bench_;
  kern::Module* module_ = nullptr;
  void* obj_ = nullptr;
  bool fail_next_ = false;
  std::function<void*(int)> give_object_;
  std::function<int(void*)> take_object_;
  std::function<int(void*)> take_object_maybe_;
  std::function<void(void*)> need_ref_;
};

TEST_F(ActionsTest, PostCopyGrantsOnSuccess) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  void* p = give_object_(1);
  ASSERT_EQ(p, obj_);
  EXPECT_TRUE(rt().Owns(shared(), Capability::Write(obj_, 64)));
}

TEST_F(ActionsTest, PostCopyConditionSkipsOnFailure) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  void* p = give_object_(0);
  EXPECT_EQ(p, nullptr);
  EXPECT_FALSE(rt().Owns(shared(), Capability::Write(obj_, 64)));
}

TEST_F(ActionsTest, PreTransferRequiresOwnershipAndRevokes) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  // Without ownership: violation.
  EXPECT_THROW(take_object_(obj_), lxfi::LxfiViolation);
  // Acquire, then hand off: ownership is gone afterwards.
  give_object_(1);
  EXPECT_EQ(take_object_(obj_), 0);
  EXPECT_FALSE(rt().Owns(shared(), Capability::Write(obj_, 64)));
}

TEST_F(ActionsTest, PostTransferReturnsCapabilityOnError) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  give_object_(1);
  fail_next_ = true;
  EXPECT_EQ(take_object_maybe_(obj_), -1);
  // The post(if (return < 0) transfer(...)) handed it back.
  EXPECT_TRUE(rt().Owns(shared(), Capability::Write(obj_, 64)));
  fail_next_ = false;
  EXPECT_EQ(take_object_maybe_(obj_), 0);
  EXPECT_FALSE(rt().Owns(shared(), Capability::Write(obj_, 64)));
}

TEST_F(ActionsTest, RefCheckDistinctFromWrite) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  give_object_(1);  // WRITE ownership...
  // ...but need_ref demands REF(widget): a different capability entirely.
  EXPECT_THROW(need_ref_(obj_), lxfi::LxfiViolation);
  rt().Grant(shared(), Capability::Ref("widget", obj_));
  need_ref_(obj_);  // now fine
}

TEST_F(ActionsTest, TransferRevokesFromAllPrincipalsNotJustCaller) {
  // Give the capability to an instance principal too (a buggy/compromised
  // module might have spread copies); transfer must revoke everywhere so
  // the object can be reused safely (§3.3).
  lxfi::Principal* inst = rt().CtxOf(module_)->GetOrCreate(0x77);
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  give_object_(1);
  rt().Grant(inst, Capability::Write(obj_, 64));
  take_object_(obj_);
  EXPECT_FALSE(inst->caps().CheckWrite(reinterpret_cast<uintptr_t>(obj_), 8))
      << "transfer must revoke every principal's copy";
}

TEST_F(ActionsTest, GuardCountersTrackActions) {
  lxfi::ScopedPrincipal as_module(&rt(), shared());
  uint64_t before = rt().guards().count(lxfi::GuardType::kAnnotationAction);
  give_object_(1);
  take_object_(obj_);
  EXPECT_GE(rt().guards().count(lxfi::GuardType::kAnnotationAction), before + 2);
}

// Principal selection via a kernel->module call with principal(arg).
TEST(PrincipalSelection, CalleePrincipalFromAnnotation) {
  Bench bench(/*isolated=*/true);
  lxfi::Runtime* rt = bench.rt.get();
  ASSERT_TRUE(rt->annotations()
                  .Register("widget_ops::poke", {"w"}, "principal(w)")
                  .ok());
  lxfi::Principal* observed = nullptr;
  kern::ModuleDef def;
  def.name = "principled";
  def.data_size = 16;
  def.imports = {"printk"};
  def.functions = {lxfi::DeclareFunction<void, void*>(
      "poke_impl", "widget_ops::poke", [&](void*) { observed = rt->CurrentPrincipal(); })};
  def.init = [](kern::Module&) { return 0; };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);

  auto* slot = static_cast<uintptr_t*>(m->data());
  *slot = m->FuncAddr("poke_impl");
  int widget = 0;
  bench.kernel->IndirectCall<void, void*>(slot, "widget_ops::poke", &widget);
  ASSERT_NE(observed, nullptr);
  EXPECT_EQ(observed->kind(), lxfi::PrincipalKind::kInstance);
  EXPECT_EQ(observed->name(), reinterpret_cast<uintptr_t>(&widget));
  // Same widget -> same principal; different widget -> different one.
  lxfi::Principal* first = observed;
  bench.kernel->IndirectCall<void, void*>(slot, "widget_ops::poke", &widget);
  EXPECT_EQ(observed, first);
  int widget2 = 0;
  bench.kernel->IndirectCall<void, void*>(slot, "widget_ops::poke", &widget2);
  EXPECT_NE(observed, first);
}

TEST(PrincipalSelection, DefaultIsShared) {
  Bench bench(/*isolated=*/true);
  ASSERT_TRUE(bench.rt->annotations().Register("widget_ops::tick", {}, "").ok());
  lxfi::Principal* observed = nullptr;
  kern::ModuleDef def;
  def.name = "plain";
  def.data_size = 16;
  def.imports = {"printk"};
  def.functions = {lxfi::DeclareFunction<void>(
      "tick_impl", "widget_ops::tick", [&] { observed = bench.rt->CurrentPrincipal(); })};
  def.init = [](kern::Module&) { return 0; };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  auto* slot = static_cast<uintptr_t*>(m->data());
  *slot = m->FuncAddr("tick_impl");
  bench.kernel->IndirectCall<void>(slot, "widget_ops::tick");
  EXPECT_EQ(observed, bench.rt->CtxOf(m)->shared());
}

}  // namespace
