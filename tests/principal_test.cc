// ModuleCtx / principal bookkeeping, annotation registry rules, and guard
// accounting units.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/lxfi/annotation_registry.h"
#include "src/lxfi/guards.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/runtime.h"
#include "tests/testbench.h"

namespace {

using lxfi::Capability;
using lxfitest::Bench;

class PrincipalTest : public ::testing::Test {
 protected:
  PrincipalTest() : bench_(/*isolated=*/true) {
    kern::ModuleDef def;
    def.name = "pmod";
    def.imports = {"printk"};
    def.init = [](kern::Module&) { return 0; };
    module_ = bench_.kernel->LoadModule(std::move(def));
  }

  lxfi::ModuleCtx* ctx() { return bench_.rt->CtxOf(module_); }

  Bench bench_;
  kern::Module* module_ = nullptr;
};

TEST_F(PrincipalTest, GetOrCreateIsIdempotent) {
  lxfi::Principal* a = ctx()->GetOrCreate(0x100);
  lxfi::Principal* b = ctx()->GetOrCreate(0x100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ctx()->instances().size(), 1u);
  EXPECT_EQ(a->kind(), lxfi::PrincipalKind::kInstance);
  EXPECT_EQ(a->name(), 0x100u);
}

TEST_F(PrincipalTest, LookupWithoutCreate) {
  EXPECT_EQ(ctx()->Lookup(0x200), nullptr);
  ctx()->GetOrCreate(0x200);
  EXPECT_NE(ctx()->Lookup(0x200), nullptr);
}

TEST_F(PrincipalTest, AliasChains) {
  lxfi::Principal* p = ctx()->GetOrCreate(0x1);
  ASSERT_TRUE(ctx()->Alias(0x1, 0x2));
  ASSERT_TRUE(ctx()->Alias(0x2, 0x3));  // alias of an alias
  EXPECT_EQ(ctx()->Lookup(0x2), p);
  EXPECT_EQ(ctx()->Lookup(0x3), p);
  EXPECT_FALSE(ctx()->Alias(0x99, 0x4)) << "unknown source name";
}

TEST_F(PrincipalTest, DropInstanceRemovesAllNames) {
  lxfi::Principal* p = ctx()->GetOrCreate(0x1);
  ctx()->Alias(0x1, 0x2);
  p->caps().GrantCall(0x1234);
  ctx()->DropInstance(0x2);  // dropping by any name kills the principal
  EXPECT_EQ(ctx()->Lookup(0x1), nullptr);
  EXPECT_EQ(ctx()->Lookup(0x2), nullptr);
  EXPECT_TRUE(ctx()->instances().empty());
}

TEST_F(PrincipalTest, DebugNamesAreInformative) {
  EXPECT_NE(ctx()->shared()->DebugName().find("pmod"), std::string::npos);
  EXPECT_NE(ctx()->shared()->DebugName().find("shared"), std::string::npos);
  EXPECT_NE(ctx()->global()->DebugName().find("global"), std::string::npos);
  lxfi::Principal* p = ctx()->GetOrCreate(0xabc);
  EXPECT_NE(p->DebugName().find("0xabc"), std::string::npos);
}

TEST_F(PrincipalTest, RevokeEverywhereCoversAliasesAndInstances) {
  lxfi::Principal* a = ctx()->GetOrCreate(0x1);
  lxfi::Principal* b = ctx()->GetOrCreate(0x2);
  Capability cap = Capability::Call(0x4242);
  a->caps().Grant(cap);
  b->caps().Grant(cap);
  ctx()->shared()->caps().Grant(cap);
  EXPECT_TRUE(ctx()->RevokeEverywhere(cap));
  EXPECT_FALSE(a->caps().Check(cap));
  EXPECT_FALSE(b->caps().Check(cap));
  EXPECT_FALSE(ctx()->shared()->caps().Check(cap));
  EXPECT_FALSE(ctx()->RevokeEverywhere(cap)) << "second revoke finds nothing";
}

TEST_F(PrincipalTest, DumpStateListsEveryPrincipal) {
  ctx()->GetOrCreate(0xaa);
  ctx()->GetOrCreate(0xbb);
  std::string dump = bench_.rt->DumpState();
  EXPECT_NE(dump.find("pmod"), std::string::npos);
  EXPECT_NE(dump.find("<shared>"), std::string::npos);
  EXPECT_NE(dump.find("<global>"), std::string::npos);
  EXPECT_NE(dump.find("0xaa"), std::string::npos);
  EXPECT_NE(dump.find("0xbb"), std::string::npos);
}

TEST_F(PrincipalTest, DumpStateIsDeterministic) {
  // Instances created in an order that disagrees with their sorted order:
  // the dump must come out sorted (snapshot-testable), and byte-identical
  // across repeated calls regardless of hash-table iteration order.
  ctx()->GetOrCreate(0xbb);
  ctx()->GetOrCreate(0xaa);
  ctx()->GetOrCreate(0xcc);
  std::string first = bench_.rt->DumpState();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(bench_.rt->DumpState(), first);
  }
  EXPECT_LT(first.find("0xaa"), first.find("0xbb"));
  EXPECT_LT(first.find("0xbb"), first.find("0xcc"));
}

TEST(AnnotationRegistry, IdenticalReRegistrationIsFine) {
  lxfi::AnnotationRegistry reg;
  ASSERT_TRUE(reg.Register("f", {"x"}, "pre(check(write, x, 8))").ok());
  EXPECT_TRUE(reg.Register("f", {"x"}, "pre(check(write,x,8))").ok())
      << "whitespace-insensitive identity";
}

TEST(AnnotationRegistry, ConflictingRedefinitionRejected) {
  lxfi::AnnotationRegistry reg;
  ASSERT_TRUE(reg.Register("f", {"x"}, "pre(check(write, x, 8))").ok());
  lxfi::Status st = reg.Register("f", {"x"}, "pre(check(write, x, 16))");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), lxfi::StatusCode::kAlreadyExists);
}

TEST(AnnotationRegistry, ParseErrorSurfaces) {
  lxfi::AnnotationRegistry reg;
  lxfi::Status st = reg.Register("g", {"x"}, "pre(bogus(write, x))");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), lxfi::StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Find("g"), nullptr) << "failed registrations leave no residue";
}

TEST(AnnotationRegistry, AhashOfUnknownIsZero) {
  lxfi::AnnotationRegistry reg;
  EXPECT_EQ(reg.AhashOf("nothing"), 0u);
}

TEST(AnnotationRegistry, UsageNotes) {
  lxfi::AnnotationRegistry reg;
  reg.NoteUse("kmalloc", "a");
  reg.NoteUse("kmalloc", "b");
  reg.NoteUse("kmalloc", "a");
  ASSERT_EQ(reg.uses().at("kmalloc").size(), 2u);
}

TEST(GuardStats, CountsAndTiming) {
  lxfi::GuardStats stats;
  stats.Count(lxfi::GuardType::kMemWrite);
  stats.Count(lxfi::GuardType::kMemWrite);
  stats.AddTime(lxfi::GuardType::kMemWrite, 100);
  EXPECT_EQ(stats.count(lxfi::GuardType::kMemWrite), 2u);
  EXPECT_DOUBLE_EQ(stats.MeanNs(lxfi::GuardType::kMemWrite), 50.0);
  EXPECT_EQ(stats.TotalTimeNs(), 100u);
  stats.Reset();
  EXPECT_EQ(stats.count(lxfi::GuardType::kMemWrite), 0u);
  EXPECT_FALSE(stats.Report().empty());
}

TEST(GuardStats, ScopedGuardTimesWhenEnabled) {
  lxfi::GuardStats stats;
  stats.timing_enabled = true;
  {
    lxfi::ScopedGuard g(&stats, lxfi::GuardType::kFunctionEntry);
  }
  EXPECT_EQ(stats.count(lxfi::GuardType::kFunctionEntry), 1u);
  // Timing may legitimately round to 0ns but must not crash; counts matter.
}

TEST(CapabilityToString, AllKinds) {
  EXPECT_NE(Capability::Write(uintptr_t{0x1000}, 64).ToString().find("WRITE"),
            std::string::npos);
  EXPECT_NE(Capability::Call(0x2000).ToString().find("CALL"), std::string::npos);
  EXPECT_NE(Capability::Ref(lxfi::RefType("pci_dev"), 0x3000).ToString().find("REF"),
            std::string::npos);
}

}  // namespace
