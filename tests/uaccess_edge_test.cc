// uaccess edge cases on the checked copy path (the capability surface
// vfs_read/vfs_write thread user buffers through): zero-length copies are
// vacuously allowed, ranges straddling a granted/ungranted boundary violate,
// and copy faults surface as -EFAULT instead of a panic — both at the import
// level and through the whole enforced VFS path.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/kernel/ksymtab.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/violation.h"
#include "src/lxfi/wrap.h"
#include "src/modules/ramfs/ramfs.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

// A minimal module that binds the uaccess imports, so the annotated copy
// path runs under module privilege.
struct UaccessRig {
  UaccessRig() : bench(/*isolated=*/true) {
    kern::ModuleDef def;
    def.name = "uamod";
    def.imports = {"kmalloc", "kfree", "copy_from_user", "copy_to_user", "printk"};
    def.init = [this](kern::Module& m) -> int {
      module = &m;
      kmalloc = lxfi::GetImport<void*, size_t>(m, "kmalloc");
      kfree = lxfi::GetImport<void, void*>(m, "kfree");
      copy_from_user = lxfi::GetImport<int, void*, uintptr_t, size_t>(m, "copy_from_user");
      copy_to_user = lxfi::GetImport<int, uintptr_t, const void*, size_t>(m, "copy_to_user");
      buf = static_cast<uint8_t*>(kmalloc(64));
      return buf != nullptr ? 0 : -kern::kEnomem;
    };
    EXPECT_NE(bench.kernel->LoadModule(std::move(def)), nullptr);
  }

  lxfi::Principal* shared() { return bench.rt->CtxOf(module)->shared(); }

  Bench bench;
  kern::Module* module = nullptr;
  std::function<void*(size_t)> kmalloc;
  std::function<void(void*)> kfree;
  std::function<int(void*, uintptr_t, size_t)> copy_from_user;
  std::function<int(uintptr_t, const void*, size_t)> copy_to_user;
  uint8_t* buf = nullptr;  // 64 granted bytes
};

constexpr uintptr_t kUbuf = 0x2000;

TEST(UaccessEdge, ZeroLengthCopyIsVacuouslyAllowed) {
  UaccessRig rig;
  // Destination the module does NOT own: with n == 0 the WRITE check is
  // vacuous ([dst, dst) contains no byte) and the copy succeeds.
  static uint64_t kernel_side = 0;
  lxfi::ScopedPrincipal as_module(rig.bench.rt.get(), rig.shared());
  EXPECT_EQ(rig.copy_from_user(&kernel_side, kUbuf, 0), 0);
  EXPECT_EQ(rig.copy_to_user(kUbuf, rig.buf, 0), 0);
  EXPECT_EQ(rig.bench.rt->violation_count(), 0u);
}

TEST(UaccessEdge, InBoundsCopyPasses) {
  UaccessRig rig;
  std::memset(rig.bench.kernel->user().UserPtr(kUbuf), 0x5a, 64);
  lxfi::ScopedPrincipal as_module(rig.bench.rt.get(), rig.shared());
  EXPECT_EQ(rig.copy_from_user(rig.buf, kUbuf, 64), 0);
  EXPECT_EQ(rig.buf[63], 0x5a);
  EXPECT_EQ(rig.bench.rt->violation_count(), 0u);
}

TEST(UaccessEdge, StraddlingGrantedBoundaryViolates) {
  UaccessRig rig;
  lxfi::ScopedPrincipal as_module(rig.bench.rt.get(), rig.shared());
  // [buf+32, buf+96): first half granted, second half not — the check is on
  // the whole range, so the copy must not start.
  EXPECT_THROW(rig.copy_from_user(rig.buf + 32, kUbuf, 64), lxfi::LxfiViolation);
  // One byte past the end fails the same way.
  EXPECT_THROW(rig.copy_from_user(rig.buf, kUbuf, 65), lxfi::LxfiViolation);
  ASSERT_GE(rig.bench.rt->violation_count(), 2u);
  EXPECT_EQ(rig.bench.rt->violations().back().kind, lxfi::ViolationKind::kCapCheck);
}

TEST(UaccessEdge, CopyFaultSurfacesAsEfaultNotPanic) {
  UaccessRig rig;
  lxfi::ScopedPrincipal as_module(rig.bench.rt.get(), rig.shared());
  // The destination is granted, the *user* address is out of range: the
  // access_ok check fails inside the kernel and -EFAULT comes back through
  // the wrapper — no violation, no panic.
  EXPECT_EQ(rig.copy_from_user(rig.buf, kern::kUserSpaceTop + 0x100, 8), -kern::kEfault);
  EXPECT_EQ(rig.copy_to_user(kern::kUserSpaceTop + 0x100, rig.buf, 8), -kern::kEfault);
  // Length overrunning the top of user space faults the same way.
  EXPECT_EQ(rig.copy_from_user(rig.buf, kern::kUserSpaceTop - 4, 8), -kern::kEfault);
  EXPECT_EQ(rig.bench.rt->violation_count(), 0u);
}

// The same edges through the full enforced VFS path.
class VfsUaccessEdge : public ::testing::TestWithParam<bool> {
 protected:
  VfsUaccessEdge() : bench_(GetParam()) {
    vfs_ = kern::GetVfs(bench_.kernel.get());
    EXPECT_NE(bench_.kernel->LoadModule(mods::RamfsModuleDef()), nullptr);
    EXPECT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  }

  Bench bench_;
  kern::Vfs* vfs_ = nullptr;
};

TEST_P(VfsUaccessEdge, ZeroLengthReadAndWriteReturnZero) {
  int err = 0;
  kern::File* f = vfs_->Open("/mnt/f", kern::kOCreate, &err);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(vfs_->Write(f, kUbuf, 0), 0);
  EXPECT_EQ(vfs_->Read(f, kUbuf, 0), 0);
  EXPECT_EQ(vfs_->Close(f), 0);
  if (GetParam()) {
    EXPECT_EQ(bench_.rt->violation_count(), 0u);
  }
}

TEST_P(VfsUaccessEdge, BadUserBufferSurfacesEfaultThroughTheStack) {
  int err = 0;
  kern::File* f = vfs_->Open("/mnt/f", kern::kOCreate, &err);
  ASSERT_NE(f, nullptr);
  // Write with an out-of-range user address: the fault propagates as the
  // syscall result; the module and the kernel survive.
  EXPECT_EQ(vfs_->Write(f, kern::kUserSpaceTop + 0x100, 16), -kern::kEfault);
  // A straddling user range faults before any byte moves.
  EXPECT_EQ(vfs_->Write(f, kern::kUserSpaceTop - 8, 16), -kern::kEfault);
  // The file is still usable afterwards.
  std::memset(bench_.kernel->user().UserPtr(kUbuf), 0x7b, 16);
  EXPECT_EQ(vfs_->Write(f, kUbuf, 16), 16);
  ASSERT_EQ(vfs_->Seek(f, 0), 0);
  EXPECT_EQ(vfs_->Read(f, kern::kUserSpaceTop + 0x100, 16), -kern::kEfault);
  EXPECT_EQ(vfs_->Read(f, kUbuf, 16), 16);
  EXPECT_EQ(vfs_->Close(f), 0);
  if (GetParam()) {
    EXPECT_EQ(bench_.rt->violation_count(), 0u) << "faults are errors, not violations";
  }
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, VfsUaccessEdge, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

}  // namespace
