// Tests for the SMP subsystem (src/kernel/smp.h): per-CPU contexts and
// CPU-local current(), run queues, cross-CPU calls, deterministic mode, and
// thread-safe kthread creation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/base/sync.h"
#include "src/kernel/kernel.h"
#include "src/kernel/smp.h"

namespace {

TEST(Kthread, IdsAreUniqueUnderConcurrentCreation) {
  kern::Kernel kernel;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::thread> threads;
  std::vector<std::vector<kern::KthreadContext*>> created(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&kernel, &created, t] {
      for (int i = 0; i < kPerThread; ++i) {
        created[t].push_back(kernel.CreateKthread());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::set<int> ids;
  ids.insert(kernel.current()->id);  // boot context
  for (const auto& per_thread : created) {
    for (const kern::KthreadContext* ctx : per_thread) {
      EXPECT_TRUE(ids.insert(ctx->id).second) << "duplicate kthread id " << ctx->id;
    }
  }
  EXPECT_EQ(ids.size(), 1u + kThreads * kPerThread);
}

TEST(CpuSet, DeterministicModeRunsInlineUnderCpuContext) {
  kern::Kernel kernel;
  kern::KthreadContext* boot = kernel.current();
  kern::SmpOptions options;
  options.deterministic = true;
  kern::CpuSet cpus(&kernel, 2, options);
  ASSERT_EQ(cpus.ncpus(), 2);
  // Contexts were created in order after the boot context.
  EXPECT_EQ(cpus.ctx(0)->id, boot->id + 1);
  EXPECT_EQ(cpus.ctx(1)->id, boot->id + 2);

  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    cpus.RunOn(i, [&, i] {
      EXPECT_EQ(kernel.current(), cpus.ctx(i));
      order.push_back(i);
    });
  }
  // Inline execution: everything already happened, in program order, and
  // the boot context is restored.
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(kernel.current(), boot);
  cpus.Barrier();  // no-op, must not deadlock
}

TEST(CpuSet, ThreadedCpusHaveCpuLocalCurrentAndShards) {
  kern::Kernel kernel;
  kern::KthreadContext* boot = kernel.current();
  kern::CpuSet cpus(&kernel, 3);
  ASSERT_EQ(cpus.ncpus(), 3);

  std::atomic<int> failures{0};
  for (int i = 0; i < cpus.ncpus(); ++i) {
    cpus.CallOn(i, [&, i] {
      // CPU-local current(): this CPU sees its own context...
      if (kernel.current() != cpus.ctx(i)) {
        failures.fetch_add(1);
      }
      // ...its shard index is 1 + cpu id (shard 0 = main thread)...
      if (lxfi::ThisShardIndex() != 1 + i) {
        failures.fetch_add(1);
      }
      // ...and its stack bounds were captured for the kernel-stack grant.
      if (cpus.ctx(i)->stack_lo == 0 || cpus.ctx(i)->stack_hi <= cpus.ctx(i)->stack_lo) {
        failures.fetch_add(1);
      }
    });
  }
  EXPECT_EQ(failures.load(), 0);
  // The main thread still sees the boot context.
  EXPECT_EQ(kernel.current(), boot);
  EXPECT_EQ(lxfi::ThisShardIndex(), 0);
}

TEST(CpuSet, RunOnIsFifoPerCpuAndBarrierDrains) {
  kern::Kernel kernel;
  kern::CpuSet cpus(&kernel, 2);
  std::vector<int> seen0;
  std::atomic<int> total{0};
  for (int i = 0; i < 100; ++i) {
    cpus.RunOn(0, [&seen0, &total, i] {
      seen0.push_back(i);  // single consumer: FIFO makes this safe
      total.fetch_add(1, std::memory_order_relaxed);
    });
    cpus.RunOn(1, [&total] { total.fetch_add(1, std::memory_order_relaxed); });
  }
  cpus.Barrier();
  EXPECT_EQ(total.load(), 200);
  ASSERT_EQ(seen0.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(seen0[i], i);
  }
}

TEST(CpuSet, CrossCpuCallFromCpuThread) {
  kern::Kernel kernel;
  kern::CpuSet cpus(&kernel, 2);
  std::atomic<bool> ran_on_1{false};
  std::atomic<bool> self_ipi_ok{false};
  cpus.CallOn(0, [&] {
    // IPI from CPU 0 to CPU 1.
    cpus.CallOn(1, [&] { ran_on_1.store(kernel.current() == cpus.ctx(1)); });
    // Self-IPI runs inline without deadlocking.
    cpus.CallOn(0, [&] { self_ipi_ok.store(kernel.current() == cpus.ctx(0)); });
  });
  EXPECT_TRUE(ran_on_1.load());
  EXPECT_TRUE(self_ipi_ok.load());
}

TEST(CpuSet, InterruptsDeliverToTheRaisingCpu) {
  kern::Kernel kernel;
  kern::CpuSet cpus(&kernel, 2);
  std::atomic<int> depth_seen{-1};
  cpus.CallOn(1, [&] {
    kernel.DeliverInterrupt([&] { depth_seen.store(kernel.current()->irq_depth); });
  });
  EXPECT_EQ(depth_seen.load(), 1);
  EXPECT_EQ(cpus.ctx(1)->irq_depth, 0);
  EXPECT_EQ(cpus.ctx(0)->irq_depth, 0);
}

TEST(CpuSet, ClampsToMaxSimulatedCpus) {
  kern::Kernel kernel;
  kern::CpuSet cpus(&kernel, 64);
  EXPECT_EQ(cpus.ncpus(), kern::CpuSet::kMaxSimulatedCpus);
}

}  // namespace
