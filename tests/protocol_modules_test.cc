// Protocol module tests: econet, rds, can, can-bcm benign operation on both
// kernel configurations, plus the multi-principal structure of econet.
#include <gtest/gtest.h>

#include <cstring>

#include "src/kernel/kernel.h"
#include "src/kernel/net/socket.h"
#include "src/modules/can/can.h"
#include "src/modules/can/can_bcm.h"
#include "src/modules/econet/econet.h"
#include "src/modules/rds/rds.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

class ProtocolTest : public ::testing::TestWithParam<bool> {
 protected:
  ProtocolTest() : bench_(GetParam()) { sl_ = kern::GetSocketLayer(bench_.kernel.get()); }

  uintptr_t WriteUser(uintptr_t uaddr, const void* data, size_t n) {
    std::memcpy(bench_.kernel->user().UserPtr(uaddr), data, n);
    return uaddr;
  }

  Bench bench_;
  kern::SocketLayer* sl_ = nullptr;
};

TEST_P(ProtocolTest, EconetSendRecvRoundtrip) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::EconetModuleDef()), nullptr);
  kern::Socket* sock = sl_->SysSocket(kern::kAfEconet, 0);
  ASSERT_NE(sock, nullptr);

  const char msg[] = "hello econet";
  WriteUser(0x1000, msg, sizeof(msg));
  kern::MsgHdr send{0x1000, sizeof(msg), /*name=*/1, 0};
  EXPECT_EQ(sl_->SysSendmsg(sock, &send), static_cast<int>(sizeof(msg)));

  kern::MsgHdr recv{0x2000, sizeof(msg), 0, 0};
  EXPECT_EQ(sl_->SysRecvmsg(sock, &recv), static_cast<int>(sizeof(msg)));
  EXPECT_EQ(std::memcmp(bench_.kernel->user().UserPtr(0x2000), msg, sizeof(msg)), 0);
  EXPECT_EQ(sl_->SysClose(sock), 0);
}

TEST_P(ProtocolTest, EconetBindAndIoctl) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::EconetModuleDef()), nullptr);
  kern::Socket* sock = sl_->SysSocket(kern::kAfEconet, 0);
  int station = 42;
  WriteUser(0x1000, &station, sizeof(station));
  EXPECT_EQ(sl_->SysBind(sock, 0x1000, sizeof(station)), 0);
  EXPECT_EQ(sl_->SysIoctl(sock, 0, 0x3000), 0);
  int out = 0;
  std::memcpy(&out, bench_.kernel->user().UserPtr(0x3000), sizeof(out));
  EXPECT_EQ(out, 42);
}

TEST_P(ProtocolTest, EconetSocketListSurvivesManySockets) {
  kern::Module* m = bench_.kernel->LoadModule(mods::EconetModuleDef());
  ASSERT_NE(m, nullptr);
  std::vector<kern::Socket*> socks;
  for (int i = 0; i < 8; ++i) {
    kern::Socket* s = sl_->SysSocket(kern::kAfEconet, 0);
    ASSERT_NE(s, nullptr);
    socks.push_back(s);
  }
  // Close out of order: exercises mid-list unlink under the global
  // principal.
  EXPECT_EQ(sl_->SysClose(socks[3]), 0);
  EXPECT_EQ(sl_->SysClose(socks[0]), 0);
  EXPECT_EQ(sl_->SysClose(socks[7]), 0);
  for (int i : {1, 2, 4, 5, 6}) {
    EXPECT_EQ(sl_->SysClose(socks[static_cast<size_t>(i)]), 0);
  }
}

TEST_P(ProtocolTest, RdsLoopback) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::RdsModuleDef()), nullptr);
  kern::Socket* sock = sl_->SysSocket(kern::kAfRds, 0);
  ASSERT_NE(sock, nullptr);
  const char msg[] = "reliable datagram";
  WriteUser(0x1000, msg, sizeof(msg));
  kern::MsgHdr send{0x1000, sizeof(msg), 1, 0};
  EXPECT_EQ(sl_->SysSendmsg(sock, &send), static_cast<int>(sizeof(msg)));
  kern::MsgHdr recv{0x2000, sizeof(msg), 0, 0};
  EXPECT_EQ(sl_->SysRecvmsg(sock, &recv), static_cast<int>(sizeof(msg)));
  EXPECT_EQ(std::memcmp(bench_.kernel->user().UserPtr(0x2000), msg, sizeof(msg)), 0);
  EXPECT_EQ(sl_->SysClose(sock), 0);
}

TEST_P(ProtocolTest, RdsRecvIntoRealUserBufferIsFineUnderLxfi) {
  // The buggy __copy_to_user path with a *legitimate* user destination must
  // pass: the module's user-window WRITE capability covers it.
  ASSERT_NE(bench_.kernel->LoadModule(mods::RdsModuleDef()), nullptr);
  kern::Socket* sock = sl_->SysSocket(kern::kAfRds, 0);
  uint64_t payload = 0x1122334455667788ull;
  WriteUser(0x1000, &payload, sizeof(payload));
  kern::MsgHdr send{0x1000, sizeof(payload), 1, 0};
  ASSERT_GT(sl_->SysSendmsg(sock, &send), 0);
  kern::MsgHdr recv{0x4000, sizeof(payload), 0, 0};
  EXPECT_EQ(sl_->SysRecvmsg(sock, &recv), static_cast<int>(sizeof(payload)));
  uint64_t out = 0;
  std::memcpy(&out, bench_.kernel->user().UserPtr(0x4000), sizeof(out));
  EXPECT_EQ(out, payload);
}

TEST_P(ProtocolTest, CanFrameRoundtrip) {
  ASSERT_NE(bench_.kernel->LoadModule(mods::CanModuleDef()), nullptr);
  kern::Socket* sock = sl_->SysSocket(kern::kAfCan, 0);
  ASSERT_NE(sock, nullptr);
  mods::CanFrame frame;
  frame.can_id = 0x123;
  frame.can_dlc = 8;
  std::memset(frame.data, 0x7e, sizeof(frame.data));
  WriteUser(0x1000, &frame, sizeof(frame));
  kern::MsgHdr send{0x1000, sizeof(frame), 0, 0};
  EXPECT_EQ(sl_->SysSendmsg(sock, &send), static_cast<int>(sizeof(frame)));
  kern::MsgHdr recv{0x2000, sizeof(frame), 0, 0};
  EXPECT_EQ(sl_->SysRecvmsg(sock, &recv), static_cast<int>(sizeof(frame)));
  mods::CanFrame out;
  std::memcpy(&out, bench_.kernel->user().UserPtr(0x2000), sizeof(out));
  EXPECT_EQ(out.can_id, 0x123u);
  EXPECT_EQ(out.data[5], 0x7e);
}

TEST_P(ProtocolTest, CanBcmLegitimateRxSetup) {
  // A well-formed RX_SETUP (no overflow) must work on both kernels.
  ASSERT_NE(bench_.kernel->LoadModule(mods::CanBcmModuleDef()), nullptr);
  kern::Socket* sock = sl_->SysSocket(mods::kAfCanBcm, 0);
  ASSERT_NE(sock, nullptr);
  mods::BcmMsgHead head;
  head.opcode = mods::kBcmRxSetup;
  head.nframes = 3;
  mods::CanFrame frames[3] = {};
  frames[1].can_id = 0x77;
  WriteUser(0x1000, &head, sizeof(head));
  WriteUser(0x1000 + sizeof(head), frames, sizeof(frames));
  kern::MsgHdr msg{0x1000, sizeof(head) + sizeof(frames), 0, 0};
  EXPECT_EQ(sl_->SysSendmsg(sock, &msg), static_cast<int>(msg.len));
  EXPECT_EQ(sl_->SysIoctl(sock, 0, 0x3000), 0);
  uint32_t nframes = 0;
  std::memcpy(&nframes, bench_.kernel->user().UserPtr(0x3000), sizeof(nframes));
  EXPECT_EQ(nframes, 3u);
  EXPECT_EQ(sl_->SysClose(sock), 0);
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, ProtocolTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

// --- multi-principal structure (LXFI only) -----------------------------------

TEST(EconetPrincipals, EachSocketIsItsOwnPrincipal) {
  Bench bench(/*isolated=*/true);
  kern::Module* m = bench.kernel->LoadModule(mods::EconetModuleDef());
  ASSERT_NE(m, nullptr);
  kern::SocketLayer* sl = kern::GetSocketLayer(bench.kernel.get());
  kern::Socket* a = sl->SysSocket(kern::kAfEconet, 0);
  kern::Socket* b = sl->SysSocket(kern::kAfEconet, 0);
  lxfi::ModuleCtx* ctx = bench.rt->CtxOf(m);
  lxfi::Principal* pa = ctx->Lookup(reinterpret_cast<uintptr_t>(a));
  lxfi::Principal* pb = ctx->Lookup(reinterpret_cast<uintptr_t>(b));
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  EXPECT_NE(pa, pb);
  // Socket A's principal may write its own per-socket state, not B's.
  EXPECT_TRUE(bench.rt->Owns(pa, lxfi::Capability::Write(a->sk, sizeof(mods::EconetSock))));
  EXPECT_FALSE(bench.rt->Owns(pa, lxfi::Capability::Write(b->sk, sizeof(mods::EconetSock))));
}

TEST(EconetPrincipals, ReleaseRevokesSocketCaps) {
  Bench bench(/*isolated=*/true);
  kern::Module* m = bench.kernel->LoadModule(mods::EconetModuleDef());
  kern::SocketLayer* sl = kern::GetSocketLayer(bench.kernel.get());
  kern::Socket* sock = sl->SysSocket(kern::kAfEconet, 0);
  lxfi::ModuleCtx* ctx = bench.rt->CtxOf(m);
  lxfi::Principal* p = ctx->Lookup(reinterpret_cast<uintptr_t>(sock));
  ASSERT_TRUE(bench.rt->Owns(p, lxfi::Capability::Write(sock, sizeof(kern::Socket))));
  sl->SysClose(sock);
  // post(transfer(sock_caps(sock))) on release revoked the WRITE.
  EXPECT_FALSE(p->caps().CheckWrite(reinterpret_cast<uintptr_t>(sock), 8));
}

TEST(RdsRodata, OpsTableImmutableUnderLxfi) {
  Bench bench(/*isolated=*/true);
  kern::Module* m = bench.kernel->LoadModule(mods::RdsModuleDef());
  ASSERT_NE(m, nullptr);
  // The module's shared principal holds WRITE for .data but NOT .rodata.
  lxfi::Principal* shared = bench.rt->CtxOf(m)->shared();
  EXPECT_TRUE(bench.rt->Owns(shared, lxfi::Capability::Write(m->data(), 8)));
  EXPECT_FALSE(bench.rt->Owns(shared, lxfi::Capability::Write(m->rodata(), 8)));
}

}  // namespace
