// fsperf harness smoke tests: the enforced metadata workload completes with
// zero violations, op accounting matches the configuration, and the 3-CPU
// concurrent run drives per-CPU working directories through the concurrent
// enforcement path cleanly (this test runs under TSan in CI).
#include <gtest/gtest.h>

#include "src/eval/fsperf.h"
#include "src/lxfi/runtime.h"

namespace {

constexpr eval::FsperfConfig kSmall{/*files=*/40, /*file_bytes=*/1024, /*io_chunk=*/256};

// Per file: 1 create + 4 chunk writes + 4 chunk reads + 1 stat + 1 unlink.
constexpr uint64_t kOpsPerFile = 1 + 4 + 4 + 1 + 1;

TEST(Fsperf, StockWorkloadAccounting) {
  eval::FsperfHarness h(/*isolated=*/false);
  eval::FsperfMeasurement m = h.Run(kSmall);
  EXPECT_EQ(m.create.ops, kSmall.files);
  EXPECT_EQ(m.write.ops, kSmall.files * 4);
  EXPECT_EQ(m.read.ops, kSmall.files * 4);
  EXPECT_EQ(m.stat.ops, kSmall.files);
  EXPECT_EQ(m.unlink.ops, kSmall.files);
  EXPECT_EQ(m.total_ops(), kSmall.files * kOpsPerFile);
}

TEST(Fsperf, EnforcedWorkloadCompletesWithZeroViolations) {
  eval::FsperfHarness h(/*isolated=*/true);
  eval::FsperfMeasurement m = h.Run(kSmall);
  EXPECT_EQ(m.total_ops(), kSmall.files * kOpsPerFile);
  EXPECT_EQ(m.violations, 0u);
  // The workload is repeatable on the same mount (unlink really unlinked).
  m = h.Run(kSmall);
  EXPECT_EQ(m.violations, 0u);
  EXPECT_EQ(h.runtime()->violation_count(), 0u);
}

TEST(FsperfSmp, ThreeCpuConcurrentEnforcedRunIsClean) {
  eval::FsperfHarness h(/*isolated=*/true, /*cpus=*/3);
  ASSERT_EQ(h.cpus(), 3);
  eval::FsScalingResult r = h.RunParallel(kSmall);
  EXPECT_EQ(r.ops, 3 * kSmall.files * kOpsPerFile);
  EXPECT_EQ(h.runtime()->violation_count(), 0u);
  EXPECT_GT(r.cpu_ns_total, 0u);
  // Back-to-back parallel runs reuse the same per-CPU directories.
  r = h.RunParallel(kSmall);
  EXPECT_EQ(r.ops, 3 * kSmall.files * kOpsPerFile);
  EXPECT_EQ(h.runtime()->violation_count(), 0u);
}

TEST(FsperfSmp, ThreeCpuStockRunIsClean) {
  eval::FsperfHarness h(/*isolated=*/false, /*cpus=*/3);
  eval::FsScalingResult r = h.RunParallel(kSmall);
  EXPECT_EQ(r.ops, 3 * kSmall.files * kOpsPerFile);
}

// The shared-hot-directory workload: all CPUs create/stat/unlink their own
// names in /mnt/shared, contending on one parent index through the RCU
// walk. Runs under TSan in CI.
TEST(FsperfContended, ThreeCpuSharedDirectoryEnforcedRunIsClean) {
  constexpr eval::FsContendedConfig kCfg{/*files=*/60, /*stats_per_file=*/3, /*rounds=*/2};
  eval::FsperfHarness h(/*isolated=*/true, /*cpus=*/3);
  eval::FsScalingResult r = h.RunContended(kCfg);
  EXPECT_EQ(r.ops, 3ull * kCfg.rounds * kCfg.files * (1 + kCfg.stats_per_file + 1));
  EXPECT_EQ(h.runtime()->violation_count(), 0u);
  // Repeatable: the unlink phase really emptied the shared directory.
  r = h.RunContended(kCfg);
  EXPECT_EQ(r.ops, 3ull * kCfg.rounds * kCfg.files * (1 + kCfg.stats_per_file + 1));
  EXPECT_EQ(h.runtime()->violation_count(), 0u);
}

// Same workload against the single-lock (pre-RCU) dcache ablation: results
// must match, only the locking discipline differs.
TEST(FsperfContended, LockedDcacheAblationIsCleanToo) {
  constexpr eval::FsContendedConfig kCfg{/*files=*/40, /*stats_per_file=*/2, /*rounds=*/1};
  eval::FsperfHarness h(/*isolated=*/true, /*cpus=*/3, /*locked_dcache=*/true);
  eval::FsScalingResult r = h.RunContended(kCfg);
  EXPECT_EQ(r.ops, 3ull * kCfg.rounds * kCfg.files * (1 + kCfg.stats_per_file + 1));
  EXPECT_EQ(h.runtime()->violation_count(), 0u);
}

}  // namespace
