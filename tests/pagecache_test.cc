// Page cache unit tests: a differential check against a naive block map
// under forced hash collisions (the lock-free index must behave exactly
// like the obvious one), stats accounting, and a 3-CPU read/writeback
// storm that runs under TSan in CI (busy-bit exclusion between the module
// write window and Sync's copy-out is what keeps it clean).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/kernel/block/block.h"
#include "src/kernel/fs/pagecache.h"
#include "src/kernel/kernel.h"
#include "src/kernel/smp.h"

namespace {

constexpr uint64_t kSectors = 64;

struct PcRig {
  explicit PcRig(uint64_t hash_buckets = 0) {
    kernel = std::make_unique<kern::Kernel>();
    block = kern::GetBlockLayer(kernel.get());
    dev = block->CreateRamDisk("pcdisk0", kSectors);
    // Deterministic initial disk content: sector s is filled with (s ^ 0xA5).
    for (uint64_t s = 0; s < kSectors; ++s) {
      std::memset(dev->backing + s * kern::kSectorSize, static_cast<int>(s ^ 0xA5),
                  kern::kSectorSize);
    }
    pc = kern::GetPageCache(kernel.get());
    if (hash_buckets != 0) {
      pc->set_hash_buckets_for_test(hash_buckets);
    }
  }

  std::unique_ptr<kern::Kernel> kernel;
  kern::BlockLayer* block = nullptr;
  kern::BlockDevice* dev = nullptr;
  kern::PageCache* pc = nullptr;
};

// LCG with the low (short-period) bits discarded.
uint64_t Lcg(uint64_t* s) {
  *s = *s * 6364136223846793005ull + 1442695040888963407ull;
  return *s >> 17;
}

// Drives a random bget/bwrite/sync sequence against the cache and an
// std::map reference model in lockstep. `hash_buckets` = 3 collapses the
// (dev, block) key into three values, so almost every page lives on a
// multi-entry collision chain — the chain walk and the full-hash fast path
// must be indistinguishable.
void RunDifferential(uint64_t hash_buckets, uint64_t seed) {
  PcRig rig(hash_buckets);
  // Reference model: expected content of each cached block, and of the disk.
  std::map<uint64_t, std::array<uint8_t, kern::kSectorSize>> model;
  auto expected = [&](uint64_t b) {
    auto it = model.find(b);
    if (it != model.end()) {
      return it->second;
    }
    std::array<uint8_t, kern::kSectorSize> init;
    init.fill(static_cast<uint8_t>(b ^ 0xA5));
    return init;
  };

  uint64_t s = seed;
  for (int op = 0; op < 4000; ++op) {
    uint64_t b = Lcg(&s) % kSectors;
    switch (Lcg(&s) % 4) {
      case 0:
      case 1: {  // read through the cache and verify against the model
        kern::CachedPage* p = rig.pc->Bget(rig.dev, b);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->dev, rig.dev);
        EXPECT_EQ(p->block, b);
        auto want = expected(b);
        ASSERT_EQ(std::memcmp(p->data, want.data(), kern::kSectorSize), 0)
            << "block " << b << " diverged from the naive model at op " << op;
        // Pointer stability: the same block resolves to the same page.
        kern::CachedPage* again = rig.pc->Bget(rig.dev, b);
        EXPECT_EQ(again, p);
        EXPECT_EQ(rig.pc->Brelse(again), 0);
        EXPECT_EQ(rig.pc->Brelse(p), 0);
        break;
      }
      case 2: {  // write through the exclusive window
        kern::CachedPage* p = rig.pc->Bwrite(rig.dev, b);
        ASSERT_NE(p, nullptr);
        auto next = expected(b);
        for (size_t i = 0; i < 8; ++i) {
          next[(Lcg(&s) % kern::kSectorSize)] = static_cast<uint8_t>(Lcg(&s));
        }
        std::memcpy(p->data, next.data(), kern::kSectorSize);
        rig.pc->MarkDirty(p);
        EXPECT_EQ(rig.pc->BwriteDone(p), 0);
        model[b] = next;
        break;
      }
      default: {  // writeback: the disk must now match the model exactly
        int written = rig.pc->Sync(rig.dev);
        ASSERT_GE(written, 0);
        for (uint64_t blk = 0; blk < kSectors; ++blk) {
          auto want = expected(blk);
          ASSERT_EQ(std::memcmp(rig.dev->backing + blk * kern::kSectorSize, want.data(),
                                kern::kSectorSize),
                    0)
              << "post-sync disk mismatch at block " << blk << ", op " << op;
        }
        break;
      }
    }
  }
  EXPECT_EQ(rig.pc->io_errors(), 0u);
}

TEST(PageCache, DifferentialAgainstNaiveMap) { RunDifferential(/*hash_buckets=*/0, 0xC0FFEE); }

TEST(PageCache, DifferentialUnderForcedCollisions) {
  RunDifferential(/*hash_buckets=*/3, 0xBADF00D);
  RunDifferential(/*hash_buckets=*/1, 0xFEEDFACE);  // every key collides
}

TEST(PageCache, StatsAccounting) {
  PcRig rig;
  EXPECT_EQ(rig.pc->hits() + rig.pc->misses(), 0u);
  for (uint64_t b = 0; b < 10; ++b) {
    kern::CachedPage* p = rig.pc->Bget(rig.dev, b);
    ASSERT_NE(p, nullptr);
    rig.pc->Brelse(p);
  }
  EXPECT_EQ(rig.pc->misses(), 10u);
  for (uint64_t b = 0; b < 10; ++b) {
    kern::CachedPage* p = rig.pc->Bget(rig.dev, b);
    ASSERT_NE(p, nullptr);
    rig.pc->Brelse(p);
  }
  EXPECT_EQ(rig.pc->misses(), 10u);
  EXPECT_EQ(rig.pc->hits(), 10u);
  EXPECT_EQ(rig.pc->writebacks(), 0u);
  kern::CachedPage* p = rig.pc->Bwrite(rig.dev, 3);
  p->data[0] = 0x5A;
  rig.pc->MarkDirty(p);
  rig.pc->BwriteDone(p);
  EXPECT_EQ(rig.pc->Sync(rig.dev), 1);
  EXPECT_EQ(rig.pc->writebacks(), 1u);
  EXPECT_EQ(rig.dev->backing[3 * kern::kSectorSize], 0x5A);
  // Clean pages are not rewritten.
  EXPECT_EQ(rig.pc->Sync(rig.dev), 0);
  EXPECT_EQ(rig.pc->writebacks(), 1u);
}

TEST(PageCache, InvalidateDropsDeviceAndRefills) {
  PcRig rig;
  kern::CachedPage* p = rig.pc->Bwrite(rig.dev, 7);
  std::memset(p->data, 0x77, kern::kSectorSize);
  rig.pc->MarkDirty(p);
  rig.pc->BwriteDone(p);
  ASSERT_EQ(rig.pc->Sync(rig.dev), 1);
  rig.pc->Invalidate(rig.dev);
  uint64_t misses = rig.pc->misses();
  kern::CachedPage* again = rig.pc->Bget(rig.dev, 7);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(rig.pc->misses(), misses + 1) << "invalidate must drop the cached page";
  EXPECT_EQ(again->data[0], 0x77) << "refill reads what Sync made durable";
  rig.pc->Brelse(again);
}

// 3-CPU storm: every worker pushes per-worker patterns through the
// exclusive write window on one hot block set (busy-bit contention against
// each other and against Sync) while also bgetting a disjoint read-only
// set (lock-free index contention: shared shards, chains, hold counters).
// Writers and readers use disjoint blocks because the cache intentionally
// leaves reader-vs-writer data coordination to its caller (jexfs is
// single-threaded per superblock); the busy bit only serializes writers
// and writeback. TSan (CI) checks that protocol; the final sweep checks
// every written block holds a whole, untorn pattern.
TEST(PageCacheSmp, ThreeCpuReadWritebackStorm) {
  PcRig rig;
  rig.kernel->slab().EnableSmpCache();
  constexpr int kWorkers = 3;
  constexpr uint64_t kWriteBlocks = 8;   // blocks 0..7: Bwrite + Sync only
  constexpr uint64_t kReadBlocks = 8;    // blocks 8..15: Bget only
  constexpr int kIters = 4000;
  std::atomic<uint64_t> read_errors{0};
  {
    kern::CpuSet cpus(rig.kernel.get(), kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      cpus.RunOn(w, [&rig, &read_errors, w] {
        uint64_t s = 0x1234 + static_cast<uint64_t>(w);
        for (int i = 0; i < kIters; ++i) {
          if (Lcg(&s) % 2 == 0) {
            uint64_t b = kWriteBlocks + Lcg(&s) % kReadBlocks;
            kern::CachedPage* p = rig.pc->Bget(rig.dev, b);
            if (p == nullptr) {
              read_errors.fetch_add(1, std::memory_order_relaxed);
            } else {
              // Nobody writes the read set: content must be the initial fill.
              uint8_t want = static_cast<uint8_t>(b ^ 0xA5);
              for (uint32_t j = 0; j < kern::kSectorSize; ++j) {
                if (p->data[j] != want) {
                  read_errors.fetch_add(1, std::memory_order_relaxed);
                  break;
                }
              }
              rig.pc->Brelse(p);
            }
          } else {
            uint64_t b = Lcg(&s) % kWriteBlocks;
            kern::CachedPage* p = rig.pc->Bwrite(rig.dev, b);
            if (p != nullptr) {
              std::memset(p->data, 0x40 + w, kern::kSectorSize);
              rig.pc->MarkDirty(p);
              rig.pc->BwriteDone(p);
            }
          }
          if (w == 0 && (i & 255) == 255) {
            rig.pc->Sync(rig.dev);
          }
          if ((i & 63) == 63) {
            kern::CpuSet::QuiescePoint();
          }
        }
      });
    }
    cpus.Barrier();
  }
  EXPECT_EQ(read_errors.load(), 0u);
  ASSERT_GE(rig.pc->Sync(rig.dev), 0);
  for (uint64_t b = 0; b < kWriteBlocks; ++b) {
    const uint8_t* blk = rig.dev->backing + b * kern::kSectorSize;
    uint8_t first = blk[0];
    EXPECT_TRUE(first == 0x40 || first == 0x41 || first == 0x42)
        << "block " << b << " holds a byte no writer produced";
    for (uint32_t i = 1; i < kern::kSectorSize; ++i) {
      ASSERT_EQ(blk[i], first) << "torn block " << b << " at byte " << i;
    }
  }
  EXPECT_EQ(rig.pc->io_errors(), 0u);
}

}  // namespace
