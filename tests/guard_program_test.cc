// The annotation compile pass (guard_program.h): golden disassemblies of the
// compiler's output, the EnforcementContext pre-check memo protocol, and a
// differential property test that drives randomly generated annotation sets
// through both the AST interpreter and the compiled GuardProgram and demands
// identical capability effects, violation records, and principal selection.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/kernel/kernel.h"
#include "src/lxfi/annotation_parser.h"
#include "src/lxfi/guard_program.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"

namespace {

// The differential tests provoke violations on purpose (counting policy);
// their WARN lines are noise here.
[[maybe_unused]] const bool kQuietLogs = [] {
  lxfi::SetLogLevel(lxfi::LogLevel::kError);
  return true;
}();

using lxfi::Capability;
using lxfi::CompileAnnotations;
using lxfi::GuardProgram;
using lxfi::ParseAnnotations;

std::unique_ptr<lxfi::AnnotationSet> MustParse(const std::string& name,
                                               std::vector<std::string> params,
                                               const std::string& text) {
  std::string error;
  auto set = ParseAnnotations(name, params, text, &error);
  EXPECT_NE(set, nullptr) << error;
  return set;
}

// --- golden disassemblies ----------------------------------------------------

TEST(GuardCompiler, DisassemblyNdoStartXmit) {
  auto set = MustParse("net_device_ops::ndo_start_xmit", {"skb", "dev"},
                       "principal(dev) pre(transfer(skb_caps(skb))) "
                       "post(if (return == 16) transfer(skb_caps(skb)))");
  auto prog = CompileAnnotations(*set, nullptr);
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->Disassemble(),
            "guard program 'net_device_ops::ndo_start_xmit' ahash=0x300da23142e5823b ops=9 "
            "principal=expr\n"
            "pre:\n"
            "   0: push_arg   0  ; skb\n"
            "   1: transfer iter skb_caps\n"
            "post:\n"
            "   2: push_ret\n"
            "   3: push_const #0  ; 16\n"
            "   4: eq\n"
            "   5: jz         -> 8\n"
            "   6: push_arg   0  ; skb\n"
            "   7: transfer iter skb_caps\n"
            "principal-expr:\n"
            "   8: push_arg   1  ; dev\n");
}

TEST(GuardCompiler, DisassemblyKmalloc) {
  auto set =
      MustParse("kmalloc", {"size"}, "post(if (return != 0) transfer(write, return, size))");
  auto prog = CompileAnnotations(*set, nullptr);
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->Disassemble(),
            "guard program 'kmalloc' ahash=0x9026e4df8100c1e6 ops=7 principal=none\n"
            "pre:\n"
            "post:\n"
            "   0: push_ret\n"
            "   1: push_const #0  ; 0\n"
            "   2: ne\n"
            "   3: jz         -> 7\n"
            "   4: push_ret\n"
            "   5: push_arg   0  ; size\n"
            "   6: transfer write, size\n");
}

TEST(GuardCompiler, DisassemblySpinLockIsMemoizable) {
  auto set = MustParse("spin_lock", {"lock"}, "pre(check(write, lock, 8))");
  auto prog = CompileAnnotations(*set, nullptr);
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(prog->pre_memoizable());
  EXPECT_EQ(prog->Disassemble(),
            "guard program 'spin_lock' ahash=0x665a74bcd13d0dc4 ops=3 principal=none "
            "pre_memoizable\n"
            "pre:\n"
            "   0: push_arg   0  ; lock\n"
            "   1: push_const #0  ; 8\n"
            "   2: check    write, size\n"
            "post:\n");
}

TEST(GuardCompiler, MemoizabilityRules) {
  // Pure inline checks: memoizable.
  EXPECT_TRUE(CompileAnnotations(*MustParse("f", {"a"}, "pre(check(write, a, 8))"), nullptr)
                  ->pre_memoizable());
  // Conditional checks stay memoizable (the condition depends only on args).
  EXPECT_TRUE(
      CompileAnnotations(*MustParse("f", {"a", "b"}, "pre(if (b > 0) check(call, a))"), nullptr)
          ->pre_memoizable());
  // Iterator output depends on kernel state: not memoizable.
  EXPECT_FALSE(CompileAnnotations(*MustParse("f", {"a"}, "pre(check(skb_caps(a)))"), nullptr)
                   ->pre_memoizable());
  // Copy/transfer mutate capability state: not memoizable.
  EXPECT_FALSE(CompileAnnotations(*MustParse("f", {"a"}, "pre(transfer(write, a, 8))"), nullptr)
                   ->pre_memoizable());
  // Empty pre section: nothing to memoize.
  EXPECT_FALSE(CompileAnnotations(*MustParse("f", {"a"}, "post(copy(write, a, 8))"), nullptr)
                   ->pre_memoizable());
  // Post sections never affect pre memoizability.
  EXPECT_TRUE(CompileAnnotations(
                  *MustParse("f", {"a"}, "pre(check(write, a, 8)) post(transfer(write, a, 8))"),
                  nullptr)
                  ->pre_memoizable());
}

// Every annotation the kernel API registers must lower to a program (the
// interpreter fallback is for pathological inputs, not the shipped surface).
TEST(GuardCompiler, EntireKernelApiSurfaceCompiles) {
  kern::Kernel kernel;
  lxfi::Runtime rt(&kernel);
  lxfi::InstallKernelApi(&kernel, &rt);
  size_t count = 0;
  for (const auto& [name, set] : rt.annotations().all()) {
    ASSERT_NE(set->program, nullptr) << name;
    // Compile-time iterator resolution: the API installs iterators before
    // annotations, so every slot must already be bound.
    for (size_t i = 0; i < set->program->iter_slot_count(); ++i) {
      EXPECT_NE(set->program->IterFn(i, nullptr), nullptr)
          << name << " slot " << set->program->IterName(i);
    }
    ++count;
  }
  EXPECT_GT(count, 40u);
}

// --- test rig ---------------------------------------------------------------

// A kernel+runtime pair in counting-violation mode, with a module loaded and
// a deterministic capability iterator registered. Two rigs — one compiled,
// one interpreting — receive identical stimuli in the differential tests.
struct Rig {
  explicit Rig(bool compiled, bool memo = true) {
    lxfi::RuntimeOptions opt;
    opt.policy = lxfi::ViolationPolicy::kCount;
    opt.compiled_guards = compiled;
    opt.enforcement_memo = memo;
    kernel = std::make_unique<kern::Kernel>();
    rt = std::make_unique<lxfi::Runtime>(kernel.get(), opt);
    lxfi::InstallKernelApi(kernel.get(), rt.get());
    // Deterministic iterator: emits caps that depend only on the argument
    // value, so both rigs see identical capabilities.
    rt->iterators().Register("obj_caps", [](lxfi::CapIterContext& ctx, uint64_t arg) {
      if (arg == 0) {
        return;
      }
      uintptr_t base = static_cast<uintptr_t>(arg) & ~uintptr_t{0xff};
      ctx.Emit(Capability::Write(base, 256));
      ctx.Emit(Capability::Ref("obj", reinterpret_cast<const void*>(arg)));
    });
    kern::ModuleDef def;
    def.name = "diffmod";
    def.imports = {"printk"};
    def.init = [](kern::Module&) { return 0; };
    module = kernel->LoadModule(std::move(def));
    EXPECT_NE(module, nullptr);
    mc = rt->CtxOf(module);
  }

  lxfi::Principal* shared() { return mc->shared(); }

  std::unique_ptr<kern::Kernel> kernel;
  std::unique_ptr<lxfi::Runtime> rt;
  kern::Module* module = nullptr;
  lxfi::ModuleCtx* mc = nullptr;
};

// Fake object space well above kUserSpaceTop (every module principal holds
// WRITE for user space) and away from the host stack.
constexpr uintptr_t kObjBase = 0x510000000000ull;

// One wrapper-crossing-shaped stimulus against one rig; returns a transcript
// of everything observable so the two rigs can be diffed.
std::string RunShot(Rig& rig, const std::string& name, const uint64_t* args, size_t nargs,
                    uint64_t ret, bool kernel_to_module) {
  const lxfi::AnnotationSet* set = rig.rt->annotations().Find(name);
  EXPECT_NE(set, nullptr);
  lxfi::CallEnv env;
  env.mc = rig.mc;
  env.kernel_to_module = kernel_to_module;
  env.args = args;
  env.nargs = nargs;
  env.ret = ret;
  env.what = name.c_str();
  lxfi::Principal* p =
      kernel_to_module ? rig.rt->SelectCalleePrincipal(set, rig.mc, env) : rig.shared();
  env.principal = p;
  size_t violations_before = rig.rt->violation_count();
  rig.rt->RunActions(set, env, /*post=*/false);
  rig.rt->RunActions(set, env, /*post=*/true);
  std::string out = "principal=" + p->DebugName() + "\n";
  const auto& violations = rig.rt->violations();
  for (size_t i = violations_before; i < violations.size(); ++i) {
    out += std::string(ViolationKindName(violations[i].kind)) + ": " + violations[i].details + "\n";
  }
  out += rig.rt->DumpState();
  return out;
}

// --- random annotation generator -------------------------------------------

class AnnotationGen {
 public:
  explicit AnnotationGen(lxfi::Rng* rng) : rng_(rng) {}

  std::string GenSet() {
    std::string out;
    bool have_principal = false;
    int n = static_cast<int>(rng_->Range(1, 3));
    for (int i = 0; i < n; ++i) {
      if (!out.empty()) {
        out += " ";
      }
      switch (rng_->Below(4)) {
        case 0:
          out += "pre(" + GenAction(0, false) + ")";
          break;
        case 1:
        case 2:
          out += "post(" + GenAction(0, true) + ")";
          break;
        case 3:
          if (!have_principal) {
            have_principal = true;
            switch (rng_->Below(3)) {
              case 0:
                out += "principal(global)";
                break;
              case 1:
                out += "principal(shared)";
                break;
              default:
                out += "principal(" + GenExpr(0, false) + ")";
                break;
            }
          } else {
            out += "pre(" + GenAction(0, false) + ")";
          }
          break;
      }
    }
    return out;
  }

 private:
  std::string GenExpr(int depth, bool post) {
    if (depth < 3 && rng_->Chance(0.35)) {
      static const char* kOps[] = {"+", "-", "<", ">", "<=", ">=", "==", "!="};
      const char* op = kOps[rng_->Below(8)];
      return "(" + GenExpr(depth + 1, post) + " " + op + " " + GenExpr(depth + 1, post) + ")";
    }
    if (depth < 3 && rng_->Chance(0.1)) {
      return "-" + GenExpr(depth + 1, post);
    }
    switch (rng_->Below(post ? 4u : 3u)) {
      case 0:
        return std::to_string(rng_->Below(100));
      case 1:
        return rng_->Chance(0.5) ? "a" : "b";
      case 2:
        return "c";
      default:
        return "return";
    }
  }

  std::string GenAction(int depth, bool post) {
    if (depth < 2 && rng_->Chance(0.3)) {
      return "if (" + GenExpr(0, post) + ") " + GenAction(depth + 1, post);
    }
    static const char* kActs[] = {"check", "copy", "transfer"};
    std::string act = kActs[rng_->Below(3)];
    switch (rng_->Below(4)) {
      case 0: {
        // Sizes stay literal: an expression-valued size could go negative and
        // turn into a near-2^64 grant, which both engines would dutifully
        // walk page by page.
        std::string caps = "write, " + GenExpr(0, post);
        if (rng_->Chance(0.6)) {
          caps += ", " + std::to_string(rng_->Range(1, 512));
        }
        return act + "(" + caps + ")";
      }
      case 1:
        return act + "(call, " + GenExpr(0, post) + ")";
      case 2:
        return act + "(ref(struct obj), " + GenExpr(0, post) + ")";
      default:
        return act + "(obj_caps(" + GenExpr(0, post) + "))";
    }
  }

  lxfi::Rng* rng_;
};

// --- differential property test ---------------------------------------------

TEST(GuardDifferential, RandomAnnotationSetsMatchInterpreter) {
  lxfi::Rng rng(2011);
  AnnotationGen gen(&rng);
  Rig compiled(/*compiled=*/true);
  Rig interp(/*compiled=*/false);

  // Seed both rigs with identical capabilities so checks can succeed.
  for (int i = 0; i < 8; ++i) {
    uintptr_t base = kObjBase + static_cast<uintptr_t>(i) * 0x1000;
    compiled.rt->Grant(compiled.shared(), Capability::Write(base, 0x400));
    interp.rt->Grant(interp.shared(), Capability::Write(base, 0x400));
  }

  std::vector<std::string> params = {"a", "b", "c"};
  for (int iter = 0; iter < 250; ++iter) {
    std::string text = gen.GenSet();
    std::string name = "diff_fn_" + std::to_string(iter);
    lxfi::Status st1 = compiled.rt->annotations().Register(name, params, text);
    lxfi::Status st2 = interp.rt->annotations().Register(name, params, text);
    ASSERT_TRUE(st1.ok() && st2.ok()) << text;
    const lxfi::AnnotationSet* cset = compiled.rt->annotations().Find(name);
    ASSERT_NE(cset, nullptr);
    ASSERT_NE(cset->program, nullptr) << "generator output must compile: " << text;

    for (int shot = 0; shot < 3; ++shot) {
      // Arguments mix plausible object addresses with small integers; drawn
      // once, replayed into both rigs.
      uint64_t args[3];
      for (uint64_t& a : args) {
        a = rng.Chance(0.6)
                ? kObjBase + rng.Below(8) * 0x1000 + rng.Below(4) * 0x100
                : rng.Below(64);
      }
      uint64_t ret = rng.Chance(0.5) ? args[0] : rng.Below(32);
      bool kernel_to_module = rng.Chance(0.5);
      std::string got = RunShot(compiled, name, args, 3, ret, kernel_to_module);
      std::string want = RunShot(interp, name, args, 3, ret, kernel_to_module);
      ASSERT_EQ(got, want) << "divergence on '" << text << "' shot " << shot << "\n"
                           << cset->program->Disassemble();
    }
  }
}

// The memo must never change observable behavior: replay every shot twice on
// the compiled rig (priming the memo) and once on the interpreter.
TEST(GuardDifferential, MemoizedReplayMatchesInterpreter) {
  lxfi::Rng rng(411);
  AnnotationGen gen(&rng);
  Rig compiled(/*compiled=*/true, /*memo=*/true);
  Rig interp(/*compiled=*/false, /*memo=*/false);
  std::vector<std::string> params = {"a", "b", "c"};
  for (int iter = 0; iter < 100; ++iter) {
    std::string text = "pre(" + (rng.Chance(0.5) ? std::string("check(write, a, 64)")
                                                 : std::string("if (b > 2) check(write, a, 8)")) +
                       ") " + gen.GenSet();
    std::string name = "memo_fn_" + std::to_string(iter);
    ASSERT_TRUE(compiled.rt->annotations().Register(name, params, text).ok()) << text;
    ASSERT_TRUE(interp.rt->annotations().Register(name, params, text).ok()) << text;
    uint64_t args[3] = {kObjBase + rng.Below(4) * 0x1000, rng.Below(8), rng.Below(8)};
    // Same-args replay: the second compiled run may hit the pre memo; state
    // and violations must still match an interpreter that never memoizes.
    for (int rep = 0; rep < 2; ++rep) {
      std::string got = RunShot(compiled, name, args, 3, 0, false);
      std::string want = RunShot(interp, name, args, 3, 0, false);
      ASSERT_EQ(got, want) << "memo divergence on '" << text << "' rep " << rep;
    }
  }
}

// --- memo protocol ----------------------------------------------------------

TEST(GuardMemo, PureCheckPreSectionMemoizes) {
  Rig rig(/*compiled=*/true);
  constexpr uintptr_t kLock = kObjBase;
  rig.rt->Grant(rig.shared(), Capability::Write(kLock, 64));
  ASSERT_TRUE(
      rig.rt->annotations().Register("memo_lock", {"lock"}, "pre(check(write, lock, 8))").ok());
  const lxfi::AnnotationSet* set = rig.rt->annotations().Find("memo_lock");
  ASSERT_TRUE(set->program->pre_memoizable());

  uint64_t args[1] = {kLock};
  lxfi::EnforcementContext& ec = rig.shared()->ctx();
  EXPECT_EQ(RunShot(rig, "memo_lock", args, 1, 0, false), RunShot(rig, "memo_lock", args, 1, 0, false));
  EXPECT_EQ(ec.pre_checks, 2u);
  EXPECT_EQ(ec.pre_memo_hits, 1u);

  // Different args miss the memo.
  uint64_t other[1] = {kLock + 8};
  RunShot(rig, "memo_lock", other, 1, 0, false);
  EXPECT_EQ(ec.pre_memo_hits, 1u);

  // Revocation bumps the epoch: the memo is dropped and the check fails
  // afresh instead of replaying the stale "allowed".
  rig.rt->RevokeEverywhere(Capability::Write(kLock, 64));
  size_t violations_before = rig.rt->violation_count();
  RunShot(rig, "memo_lock", args, 1, 0, false);
  EXPECT_EQ(rig.rt->violation_count(), violations_before + 1);
  EXPECT_EQ(ec.pre_memo_hits, 1u);

  // A failing pass must not fill the memo either.
  RunShot(rig, "memo_lock", args, 1, 0, false);
  EXPECT_EQ(rig.rt->violation_count(), violations_before + 2);
  EXPECT_EQ(ec.pre_memo_hits, 1u);
}

// A kernel->module pre section is a no-op (checks only enforce when the
// module side is granting), so its "clean" pass must never seed the memo a
// module->kernel crossing of the same program could hit.
TEST(GuardMemo, KernelToModulePassDoesNotSeedModuleToKernelSkip) {
  Rig rig(/*compiled=*/true);
  ASSERT_TRUE(
      rig.rt->annotations().Register("dir_fn", {"p"}, "pre(check(write, p, 8))").ok());
  uint64_t args[1] = {kObjBase + 0x7000};  // range the principal does NOT own
  // Kernel->module: check is a no-op, no violation.
  size_t before = rig.rt->violation_count();
  RunShot(rig, "dir_fn", args, 1, 0, /*kernel_to_module=*/true);
  EXPECT_EQ(rig.rt->violation_count(), before);
  // Module->kernel with the same program/principal/args: the real check must
  // still run and fail.
  before = rig.rt->violation_count();
  RunShot(rig, "dir_fn", args, 1, 0, /*kernel_to_module=*/false);
  EXPECT_EQ(rig.rt->violation_count(), before + 1)
      << "memo seeded by a no-op kernel->module pass suppressed a real check";
}

TEST(GuardMemo, DisabledByOption) {
  Rig rig(/*compiled=*/true, /*memo=*/false);
  constexpr uintptr_t kLock = kObjBase;
  rig.rt->Grant(rig.shared(), Capability::Write(kLock, 64));
  ASSERT_TRUE(
      rig.rt->annotations().Register("memo_lock", {"lock"}, "pre(check(write, lock, 8))").ok());
  uint64_t args[1] = {kLock};
  RunShot(rig, "memo_lock", args, 1, 0, false);
  RunShot(rig, "memo_lock", args, 1, 0, false);
  EXPECT_EQ(rig.shared()->ctx().pre_memo_hits, 0u);
}

// --- iterator resolution ----------------------------------------------------

TEST(GuardProgram, LateIteratorRegistrationResolvesLazily) {
  Rig rig(/*compiled=*/true);
  // Annotation registered (and compiled) before its iterator exists.
  ASSERT_TRUE(rig.rt->annotations().Register("late_fn", {"a"}, "pre(check(late_caps(a)))").ok());
  const lxfi::AnnotationSet* set = rig.rt->annotations().Find("late_fn");
  ASSERT_NE(set->program, nullptr);
  EXPECT_EQ(set->program->IterFn(0, nullptr), nullptr);

  uint64_t args[1] = {kObjBase};
  size_t before = rig.rt->violation_count();
  RunShot(rig, "late_fn", args, 1, 0, false);
  EXPECT_EQ(rig.rt->violation_count(), before + 1) << "unknown iterator must raise";

  // Register the iterator afterwards; the compiled program resolves lazily.
  rig.rt->iterators().Register("late_caps", [](lxfi::CapIterContext& ctx, uint64_t arg) {
    ctx.Emit(Capability::Write(static_cast<uintptr_t>(arg), 8));
  });
  rig.rt->Grant(rig.shared(), Capability::Write(kObjBase, 64));
  before = rig.rt->violation_count();
  RunShot(rig, "late_fn", args, 1, 0, false);
  EXPECT_EQ(rig.rt->violation_count(), before);
}

// An import wrapper bound before a Runtime option flip keeps its bound
// engine; a crossing through the wrapper behaves identically either way.
TEST(GuardProgram, WrapperCrossingsMatchAcrossEngines) {
  for (bool compiled : {false, true}) {
    lxfi::RuntimeOptions opt;
    opt.compiled_guards = compiled;
    auto kernel = std::make_unique<kern::Kernel>();
    auto rt = std::make_unique<lxfi::Runtime>(kernel.get(), opt);
    lxfi::InstallKernelApi(kernel.get(), rt.get());

    kern::Module* module = nullptr;
    std::function<void*(size_t)> kmalloc;
    std::function<void(void*)> kfree;
    std::function<void(uintptr_t*)> spin_lock;
    kern::ModuleDef def;
    def.name = "xmod";
    def.imports = {"kmalloc", "kfree", "spin_lock"};
    def.init = [&](kern::Module& m) -> int {
      module = &m;
      kmalloc = lxfi::GetImport<void*, size_t>(m, "kmalloc");
      kfree = lxfi::GetImport<void, void*>(m, "kfree");
      spin_lock = lxfi::GetImport<void, uintptr_t*>(m, "spin_lock");
      return 0;
    };
    ASSERT_NE(kernel->LoadModule(std::move(def)), nullptr);

    lxfi::Principal* shared = rt->CtxOf(module)->shared();
    lxfi::ScopedPrincipal as_module(rt.get(), shared);
    void* p = kmalloc(128);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(rt->Owns(shared, Capability::Write(p, 128))) << "compiled=" << compiled;
    spin_lock(static_cast<uintptr_t*>(p));
    kfree(p);
    EXPECT_FALSE(rt->Owns(shared, Capability::Write(p, 128))) << "compiled=" << compiled;
    EXPECT_EQ(rt->violation_count(), 0u) << "compiled=" << compiled;
  }
}

}  // namespace
