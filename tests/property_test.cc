// Property-based tests over randomized workloads: the capability algebra,
// writer-set/indirect-call agreement, and slab invariants.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/base/rng.h"
#include "src/kernel/kernel.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"
#include "tests/testbench.h"

namespace {

using lxfi::Capability;
using lxfitest::Bench;

// --- capability algebra --------------------------------------------------------
//
// Invariants (§3.2/§3.3):
//  I1  after Grant(p, c): Owns(p, c)
//  I2  after RevokeEverywhere(c): no principal owns c directly
//  I3  shared's caps are visible to every instance
//  I4  global sees the union of the module's caps
//  I5  an instance never sees a sibling's caps (absent shared/global)

class CapAlgebraProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CapAlgebraProperty, RandomGrantRevokeSequence) {
  Bench bench(/*isolated=*/true);
  kern::ModuleDef def;
  def.name = "prop";
  def.imports = {"printk"};
  def.init = [](kern::Module&) { return 0; };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  lxfi::Runtime& rt = *bench.rt;
  lxfi::ModuleCtx* ctx = rt.CtxOf(m);

  lxfi::Rng rng(GetParam());
  std::vector<lxfi::Principal*> principals = {ctx->shared(), ctx->GetOrCreate(0xa),
                                              ctx->GetOrCreate(0xb), ctx->GetOrCreate(0xc)};
  // Track expected direct ownership: principal -> set of cap keys.
  auto key_of = [](const Capability& c) {
    return std::make_tuple(static_cast<int>(c.kind), c.addr, c.size, c.ref_type);
  };
  std::map<std::tuple<int, uintptr_t, size_t, uint64_t>, std::vector<lxfi::Principal*>> owners;

  auto random_cap = [&]() -> Capability {
    uintptr_t addr = 0x500000000000ull + rng.Below(32) * 0x1000;
    switch (rng.Below(3)) {
      case 0:
        return Capability::Write(addr, 64 * (1 + rng.Below(4)));
      case 1:
        return Capability::Call(0xffffffff81000000ull + rng.Below(16) * 0x100);
      default:
        return Capability::Ref(100 + rng.Below(4), addr);
    }
  };

  for (int step = 0; step < 500; ++step) {
    Capability cap = random_cap();
    lxfi::Principal* p = principals[rng.Below(principals.size())];
    if (rng.Chance(0.6)) {
      rt.Grant(p, cap);
      auto& v = owners[key_of(cap)];
      bool present = false;
      for (auto* q : v) {
        present = present || q == p;
      }
      if (!present) {
        v.push_back(p);
      }
      ASSERT_TRUE(rt.Owns(p, cap)) << "I1 violated at step " << step;
    } else {
      rt.RevokeEverywhere(cap);
      // WRITE revocation is overlap-based: drop every overlapping key.
      for (auto it = owners.begin(); it != owners.end();) {
        auto [kind, addr, size, ref] = it->first;
        bool dead = false;
        if (cap.kind == lxfi::CapKind::kWrite && kind == 0) {
          dead = addr < cap.addr + cap.size && cap.addr < addr + size;
        } else {
          dead = key_of(cap) == it->first;
        }
        it = dead ? owners.erase(it) : std::next(it);
      }
      for (auto* q : principals) {
        ASSERT_FALSE(q->caps().Check(cap)) << "I2 violated at step " << step;
      }
    }
    // Cross-check a random sample of expectations.
    if (step % 16 == 0) {
      for (const auto& [k, v] : owners) {
        auto [kind, addr, size, ref] = k;
        Capability probe;
        if (kind == 0) {
          probe = Capability::Write(addr, size);
        } else if (kind == 2) {
          probe = Capability::Call(addr);
        } else {
          probe = Capability::Ref(ref, addr);
        }
        probe.kind = static_cast<lxfi::CapKind>(kind);
        for (auto* q : v) {
          ASSERT_TRUE(rt.Owns(q, probe)) << "tracked owner lost cap at step " << step;
          // I4: global sees it too.
          ASSERT_TRUE(rt.Owns(ctx->global(), probe)) << "I4 violated at step " << step;
        }
        // I3: shared ownership implies everyone.
        bool shared_owns = false;
        for (auto* q : v) {
          shared_owns = shared_owns || q == ctx->shared();
        }
        if (shared_owns) {
          for (auto* q : principals) {
            ASSERT_TRUE(rt.Owns(q, probe)) << "I3 violated at step " << step;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapAlgebraProperty, ::testing::Values(11, 22, 33, 44, 55, 66));

// --- kmalloc/kfree conservation --------------------------------------------------
//
// Invariant: after any interleaving of module allocations and frees, the
// module owns WRITE for exactly the live allocations.

class AllocProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocProperty, OwnershipMatchesLiveness) {
  Bench bench(/*isolated=*/true);
  struct St {
    std::function<void*(size_t)> kmalloc;
    std::function<void(void*)> kfree;
  };
  auto st = std::make_shared<St>();
  kern::ModuleDef def;
  def.name = "allocprop";
  def.imports = {"kmalloc", "kfree", "printk"};
  def.init = [st](kern::Module& m) -> int {
    st->kmalloc = lxfi::GetImport<void*, size_t>(m, "kmalloc");
    st->kfree = lxfi::GetImport<void, void*>(m, "kfree");
    return 0;
  };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  lxfi::Runtime& rt = *bench.rt;
  lxfi::Principal* shared = rt.CtxOf(m)->shared();

  lxfi::Rng rng(GetParam());
  std::vector<std::pair<void*, size_t>> live;
  lxfi::ScopedPrincipal as_module(&rt, shared);
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.Chance(0.6)) {
      size_t size = 16 + rng.Below(900);
      void* p = st->kmalloc(size);
      ASSERT_NE(p, nullptr);
      live.emplace_back(p, size);
    } else {
      size_t idx = rng.Below(live.size());
      st->kfree(live[idx].first);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    if (step % 20 == 0) {
      for (const auto& [p, size] : live) {
        ASSERT_TRUE(rt.Owns(shared, Capability::Write(p, size)))
            << "live allocation lost its WRITE at step " << step;
      }
    }
  }
  // Free everything: no residual ownership.
  std::vector<std::pair<void*, size_t>> drained = live;
  for (const auto& [p, size] : drained) {
    st->kfree(p);
  }
  for (const auto& [p, size] : drained) {
    EXPECT_FALSE(shared->caps().CheckWrite(reinterpret_cast<uintptr_t>(p), 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocProperty, ::testing::Values(3, 7, 31, 127));

// --- slab reuse never aliases two live objects -----------------------------------

class SlabProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlabProperty, NoLiveAliasing) {
  kern::Kernel k;
  lxfi::Rng rng(GetParam());
  std::vector<std::pair<char*, size_t>> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Chance(0.55)) {
      size_t size = 1 + rng.Below(3000);
      auto* p = static_cast<char*>(k.slab().Alloc(size));
      ASSERT_NE(p, nullptr);
      for (const auto& [q, qsize] : live) {
        bool overlap = p < q + qsize && q < p + size;
        ASSERT_FALSE(overlap) << "slab handed out overlapping live objects";
      }
      live.emplace_back(p, size);
    } else {
      size_t idx = rng.Below(live.size());
      k.slab().Free(live[idx].first);
      live.erase(live.begin() + static_cast<long>(idx));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlabProperty, ::testing::Values(101, 202, 303));

}  // namespace
