// Rename and lockref semantics on the RCU-walk dcache, plus the 3-CPU
// storms that pin them down under TSan (CI):
//   - the (flags, open_count) lockref pair closes the open-vs-unlink and
//     open-vs-rename TOCTOU: whichever single 64-bit CAS lands first wins;
//   - the seqlock-correct d_move commit (new name positive before the old
//     name dies) means a concurrent walker sees old, both, or new — never
//     a half-moved neither, and never a torn ino.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>

#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/kernel/smp.h"
#include "src/lxfi/kernel_api.h"
#include "src/modules/ramfs/ramfs.h"

namespace {

struct VfsRig {
  VfsRig() {
    kernel = std::make_unique<kern::Kernel>();
    lxfi::InstallKernelApi(kernel.get(), nullptr);
    EXPECT_NE(kernel->LoadModule(mods::RamfsModuleDef()), nullptr);
    vfs = kern::GetVfs(kernel.get());
    sb = vfs->Mount("ramfs", "/mnt");
  }

  kern::File* Create(const char* path) {
    int err = 0;
    kern::File* f = vfs->Open(path, kern::kOCreate, &err);
    EXPECT_NE(f, nullptr) << path << " err=" << err;
    return f;
  }

  std::unique_ptr<kern::Kernel> kernel;
  kern::Vfs* vfs = nullptr;
  kern::SuperBlock* sb = nullptr;
};

TEST(Lockref, OpenBlocksUnlinkUntilClose) {
  VfsRig rig;
  ASSERT_NE(rig.sb, nullptr);
  kern::File* f = rig.Create("/mnt/held");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(rig.vfs->Unlink("/mnt/held"), -kern::kEbusy)
      << "an open handle must pin the name";
  ASSERT_EQ(rig.vfs->Close(f), 0);
  EXPECT_EQ(rig.vfs->Unlink("/mnt/held"), 0);
}

TEST(Lockref, OpenBlocksRenameUntilClose) {
  VfsRig rig;
  ASSERT_NE(rig.sb, nullptr);
  kern::File* f = rig.Create("/mnt/src");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(rig.vfs->Rename("/mnt/src", "/mnt/dst"), -kern::kEbusy);
  ASSERT_EQ(rig.vfs->Close(f), 0);
  EXPECT_EQ(rig.vfs->Rename("/mnt/src", "/mnt/dst"), 0);
  kern::VfsStat st;
  EXPECT_EQ(rig.vfs->Stat("/mnt/src", &st), -kern::kEnoent);
  EXPECT_EQ(rig.vfs->Stat("/mnt/dst", &st), 0);
}

TEST(Rename, PreservesInodeAndRefusesOccupiedDestination) {
  VfsRig rig;
  ASSERT_NE(rig.sb, nullptr);
  ASSERT_EQ(rig.vfs->Mkdir("/mnt/p"), 0);
  ASSERT_EQ(rig.vfs->Mkdir("/mnt/q"), 0);
  kern::File* f = rig.Create("/mnt/p/f");
  ASSERT_NE(f, nullptr);
  kern::VfsStat before;
  ASSERT_EQ(rig.vfs->Stat("/mnt/p/f", &before), 0);
  ASSERT_EQ(rig.vfs->Close(f), 0);
  // Cross-directory move keeps the inode.
  ASSERT_EQ(rig.vfs->Rename("/mnt/p/f", "/mnt/q/g"), 0);
  kern::VfsStat after;
  ASSERT_EQ(rig.vfs->Stat("/mnt/q/g", &after), 0);
  EXPECT_EQ(after.ino, before.ino);
  // RENAME_NOREPLACE: a positive destination refuses the move.
  kern::File* h = rig.Create("/mnt/p/h");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(rig.vfs->Close(h), 0);
  EXPECT_EQ(rig.vfs->Rename("/mnt/q/g", "/mnt/p/h"), -kern::kEexist);
  // Directories do not move (immutable depth anchors the lock order).
  EXPECT_EQ(rig.vfs->Rename("/mnt/p", "/mnt/r"), -kern::kEisdir);
}

// 3-CPU open/unlink storm on one hot name: worker 0 churns create/unlink,
// workers 1-2 race opens against the dying mark. Every open that wins the
// lockref CAS must observe a fully live file (read works, close works);
// every unlink that loses must fail with EBUSY/ENOENT, never corrupt state.
TEST(LockrefSmp, ThreeCpuOpenUnlinkStorm) {
  VfsRig rig;
  ASSERT_NE(rig.sb, nullptr);
  rig.kernel->slab().EnableSmpCache();
  constexpr int kIters = 6000;
  std::atomic<uint64_t> opens{0};
  std::atomic<uint64_t> unlinks{0};
  std::atomic<uint64_t> errors{0};
  {
    kern::CpuSet cpus(rig.kernel.get(), 3);
    cpus.RunOn(0, [&rig, &unlinks, &errors] {
      for (int i = 0; i < kIters; ++i) {
        int err = 0;
        kern::File* f = rig.vfs->Open("/mnt/hot", kern::kOCreate, &err);
        if (f != nullptr) {
          rig.vfs->Close(f);
        }
        int rc = rig.vfs->Unlink("/mnt/hot");
        if (rc == 0) {
          unlinks.fetch_add(1, std::memory_order_relaxed);
        } else if (rc != -kern::kEbusy && rc != -kern::kEnoent) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        if ((i & 63) == 63) {
          kern::CpuSet::QuiescePoint();
        }
      }
    });
    for (int w = 1; w < 3; ++w) {
      cpus.RunOn(w, [&rig, &opens, &errors] {
        for (int i = 0; i < kIters; ++i) {
          int err = 0;
          kern::File* f = rig.vfs->Open("/mnt/hot", 0, &err);
          if (f != nullptr) {
            // The lockref reference pins the file: it must be fully usable
            // even if an unlink is spinning on EBUSY right now.
            if (rig.vfs->Read(f, 0x1000, 8) < 0 || rig.vfs->Close(f) != 0) {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
            opens.fetch_add(1, std::memory_order_relaxed);
          } else if (err != -kern::kEnoent && err != -kern::kEbusy) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          if ((i & 63) == 63) {
            kern::CpuSet::QuiescePoint();
          }
        }
      });
    }
    cpus.Barrier();
  }
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_GT(unlinks.load(), 0u) << "the storm never exercised a successful unlink";
  // Quiesced aftermath: the name is either absent or a normal live file.
  int rc = rig.vfs->Unlink("/mnt/hot");
  EXPECT_TRUE(rc == 0 || rc == -kern::kEnoent) << rc;
  kern::VfsStat st;
  EXPECT_EQ(rig.vfs->Stat("/mnt/hot", &st), -kern::kEnoent);
}

// 3-CPU rename/stat storm: worker 0 bounces one file between two names in
// two directories; readers stat both names every iteration. The d_move
// commit order guarantees each stat sees the true inode or a clean miss.
TEST(LockrefSmp, ThreeCpuRenameStatStorm) {
  VfsRig rig;
  ASSERT_NE(rig.sb, nullptr);
  rig.kernel->slab().EnableSmpCache();
  ASSERT_EQ(rig.vfs->Mkdir("/mnt/r1"), 0);
  ASSERT_EQ(rig.vfs->Mkdir("/mnt/r2"), 0);
  kern::File* f = rig.Create("/mnt/r1/ball");
  ASSERT_NE(f, nullptr);
  kern::VfsStat hot;
  ASSERT_EQ(rig.vfs->Stat("/mnt/r1/ball", &hot), 0);
  ASSERT_EQ(rig.vfs->Close(f), 0);

  constexpr int kIters = 4000;
  std::atomic<uint64_t> moves{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> errors{0};
  {
    kern::CpuSet cpus(rig.kernel.get(), 3);
    cpus.RunOn(0, [&rig, &moves, &errors] {
      const char* a = "/mnt/r1/ball";
      const char* b = "/mnt/r2/ball";
      for (int i = 0; i < kIters; ++i) {
        int rc = rig.vfs->Rename(i % 2 == 0 ? a : b, i % 2 == 0 ? b : a);
        if (rc == 0) {
          moves.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);  // sole mover: must win
        }
        if ((i & 63) == 63) {
          kern::CpuSet::QuiescePoint();
        }
      }
    });
    for (int w = 1; w < 3; ++w) {
      cpus.RunOn(w, [&rig, &hot, &misses, &errors] {
        for (int i = 0; i < kIters; ++i) {
          for (const char* path : {"/mnt/r1/ball", "/mnt/r2/ball"}) {
            kern::VfsStat st;
            int rc = rig.vfs->Stat(path, &st);
            if (rc == 0) {
              if (st.ino != hot.ino) {
                errors.fetch_add(1, std::memory_order_relaxed);  // torn resolve
              }
            } else if (rc == -kern::kEnoent || rc == -kern::kEbusy) {
              misses.fetch_add(1, std::memory_order_relaxed);
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
          if ((i & 63) == 63) {
            kern::CpuSet::QuiescePoint();
          }
        }
      });
    }
    cpus.Barrier();
  }
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(moves.load(), static_cast<uint64_t>(kIters));
  // Exactly one name survives with the original inode.
  kern::VfsStat s1, s2;
  int r1 = rig.vfs->Stat("/mnt/r1/ball", &s1);
  int r2 = rig.vfs->Stat("/mnt/r2/ball", &s2);
  ASSERT_TRUE((r1 == 0) != (r2 == 0));
  EXPECT_EQ((r1 == 0 ? s1 : s2).ino, hot.ino);
}

}  // namespace
