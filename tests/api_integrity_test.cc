// The §2.2 attack catalogue: each way the paper says a compromised module
// can abuse a "harmless" kernel API, staged by a malicious module and
// checked to be (a) effective on a stock kernel and (b) stopped by LXFI.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/net/netdevice.h"
#include "src/kernel/pci/pci.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/mem.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"
#include "src/modules/e1000/e1000.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

// A module that imports powerful-looking interfaces and misuses them on
// command. Its init is benign; each attack is a separate entry point.
struct EvilState {
  kern::Module* m = nullptr;
  std::function<void(uintptr_t*)> spin_lock_init;
  std::function<int(kern::PciDev*)> pci_enable_device;
  std::function<void(kern::NetDevice*, kern::NapiStruct*, uintptr_t)> netif_napi_add;
  std::function<void*(size_t)> kmalloc;
  std::function<void(kern::SkBuff*)> kfree_skb;
  std::function<int(kern::SkBuff*)> netif_rx;
};

kern::ModuleDef EvilModuleDef(std::shared_ptr<EvilState> st) {
  kern::ModuleDef def;
  def.name = "evil";
  def.imports = {"spin_lock_init", "pci_enable_device", "netif_napi_add",
                 "kmalloc",        "kfree_skb",         "netif_rx",
                 "printk"};
  def.init = [st](kern::Module& m) -> int {
    st->m = &m;
    st->spin_lock_init = lxfi::GetImport<void, uintptr_t*>(m, "spin_lock_init");
    st->pci_enable_device = lxfi::GetImport<int, kern::PciDev*>(m, "pci_enable_device");
    st->netif_napi_add =
        lxfi::GetImport<void, kern::NetDevice*, kern::NapiStruct*, uintptr_t>(m,
                                                                              "netif_napi_add");
    st->kmalloc = lxfi::GetImport<void*, size_t>(m, "kmalloc");
    st->kfree_skb = lxfi::GetImport<void, kern::SkBuff*>(m, "kfree_skb");
    st->netif_rx = lxfi::GetImport<int, kern::SkBuff*>(m, "netif_rx");
    return 0;
  };
  return def;
}

class ApiIntegrityTest : public ::testing::TestWithParam<bool> {
 protected:
  ApiIntegrityTest() : bench_(GetParam()), st_(std::make_shared<EvilState>()) {
    module_ = bench_.kernel->LoadModule(EvilModuleDef(st_));
  }

  bool isolated() const { return GetParam(); }

  // Runs an attack under the module's shared principal; returns true if a
  // violation stopped it.
  template <typename Fn>
  bool Blocked(Fn&& attack) {
    if (!isolated()) {
      attack();
      return false;
    }
    lxfi::ScopedPrincipal as_module(bench_.rt.get(),
                                    bench_.rt->CtxOf(module_)->shared());
    try {
      attack();
      return false;
    } catch (const lxfi::LxfiViolation&) {
      return true;
    }
  }

  Bench bench_;
  std::shared_ptr<EvilState> st_;
  kern::Module* module_ = nullptr;
};

// §1 / §2.2 "write access to memory": spin_lock_init over the current
// process's uid field makes the caller root on a stock kernel.
TEST_P(ApiIntegrityTest, SpinLockInitOverUid) {
  kern::Task* task = bench_.kernel->current_task();
  auto* uid_word = reinterpret_cast<uintptr_t*>(&task->cred);
  bool blocked = Blocked([&] { st_->spin_lock_init(uid_word); });
  if (isolated()) {
    EXPECT_TRUE(blocked);
    EXPECT_EQ(task->cred.uid, 1000u);
  } else {
    EXPECT_EQ(task->cred.uid, 0u) << "stock kernel: uid zeroed = root";
  }
}

// §2.2 "object ownership": enabling a pci_dev the module does not own.
TEST_P(ApiIntegrityTest, EnableSomeoneElsesPciDevice) {
  kern::PciDev* other = kern::GetPciBus(bench_.kernel.get())->AddDevice(0x10ec, 0x8168, 64, 7);
  bool blocked = Blocked([&] { st_->pci_enable_device(other); });
  if (isolated()) {
    EXPECT_TRUE(blocked);
    EXPECT_FALSE(other->enabled);
  } else {
    EXPECT_TRUE(other->enabled) << "stock kernel trusts the pointer";
  }
}

// §2.2 "forged structure": a module-fabricated pci_dev.
TEST_P(ApiIntegrityTest, EnableForgedPciDevice) {
  // The module fabricates a pci_dev in memory it controls.
  auto forge = [&]() -> kern::PciDev* {
    if (isolated()) {
      lxfi::ScopedPrincipal as_module(bench_.rt.get(),
                                      bench_.rt->CtxOf(module_)->shared());
      return static_cast<kern::PciDev*>(st_->kmalloc(sizeof(kern::PciDev)));
    }
    return static_cast<kern::PciDev*>(st_->kmalloc(sizeof(kern::PciDev)));
  };
  kern::PciDev* fake = forge();
  ASSERT_NE(fake, nullptr);
  bool blocked = Blocked([&] { st_->pci_enable_device(fake); });
  if (isolated()) {
    // Even though the module OWNS the memory (WRITE), it holds no REF —
    // write access and object ownership are different capabilities.
    EXPECT_TRUE(blocked);
  }
}

// §2.2 "callback functions": registering an arbitrary pointer as a NAPI
// poll callback would let the kernel run it later.
TEST_P(ApiIntegrityTest, RegisterBogusPollCallback) {
  kern::NetDevice* dev = kern::AllocEtherdev(bench_.kernel.get(), 32);
  kern::NapiStruct napi_storage;
  kern::NapiStruct* napi = &napi_storage;
  uintptr_t bogus = 0x414141414141ull;
  bool blocked = Blocked([&] {
    // On the isolated kernel the module also lacks REF(net_device)/WRITE
    // for dev and napi, so the violation may fire on any of the three
    // checks — all of them are the contract.
    st_->netif_napi_add(dev, napi, bogus);
  });
  if (isolated()) {
    EXPECT_TRUE(blocked);
    EXPECT_NE(dev->napi, napi);
  } else {
    EXPECT_EQ(dev->napi, napi);
    EXPECT_EQ(napi->poll, bogus) << "stock kernel will jump here later";
  }
}

// §2.2 "data structure integrity": an sk_buff whose data pointer aims at
// kernel memory the module cannot write. netif_rx's transfer action audits
// the pointed-to buffer via skb_caps.
TEST_P(ApiIntegrityTest, SkbWithForgedDataPointer) {
  // Kernel-side victim buffer.
  auto* victim = static_cast<uint8_t*>(bench_.kernel->slab().Alloc(256));
  bool blocked = Blocked([&] {
    auto* skb = static_cast<kern::SkBuff*>(st_->kmalloc(sizeof(kern::SkBuff)));
    lxfi::Store(*st_->m, &skb->head, victim);
    lxfi::Store(*st_->m, &skb->data, victim);
    lxfi::Store(*st_->m, &skb->len, 256u);
    lxfi::Store(*st_->m, &skb->capacity, 256u);
    st_->netif_rx(skb);
  });
  if (isolated()) {
    EXPECT_TRUE(blocked) << "transfer(skb_caps) must catch the forged payload pointer";
  }
}

// Freeing an skb the module never owned would let it corrupt the allocator
// state of someone else's packet.
TEST_P(ApiIntegrityTest, FreeForeignSkb) {
  kern::SkBuff* foreign = kern::AllocSkb(bench_.kernel.get(), 64);
  bool blocked = Blocked([&] { st_->kfree_skb(foreign); });
  if (isolated()) {
    EXPECT_TRUE(blocked);
    EXPECT_TRUE(bench_.kernel->slab().IsLive(foreign));
  } else {
    EXPECT_FALSE(bench_.kernel->slab().IsLive(foreign));
  }
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, ApiIntegrityTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

}  // namespace
