// Unit and property tests for the flat enforcement containers
// (src/base/flat_table.h, src/base/small_vector.h) and for the
// EnforcementContext memo invalidation rules.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/flat_table.h"
#include "src/base/rng.h"
#include "src/base/small_vector.h"
#include "src/lxfi/enforcement_context.h"

namespace {

using lxfi::FlatSet;
using lxfi::FlatTable;
using lxfi::SmallVector;

// --- SmallVector ------------------------------------------------------------

TEST(SmallVector, StaysInlineUpToCapacity) {
  SmallVector<uint64_t, 4> v;
  for (uint64_t i = 0; i < 4; ++i) {
    v.push_back(i);
  }
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(v[i], i);
  }
}

TEST(SmallVector, EraseValuePreservesOrder) {
  SmallVector<int, 2> v;
  for (int x : {1, 2, 3, 2, 4}) {
    v.push_back(x);
  }
  EXPECT_EQ(v.erase_value(2), 2u);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 3);
  EXPECT_EQ(v[2], 4);
  EXPECT_FALSE(v.contains(2));
  EXPECT_TRUE(v.contains(4));
}

TEST(SmallVector, CopyAndMoveAcrossInlineHeapBoundary) {
  SmallVector<int, 2> heap_backed;
  for (int i = 0; i < 10; ++i) {
    heap_backed.push_back(i);
  }
  SmallVector<int, 2> copy(heap_backed);
  ASSERT_EQ(copy.size(), 10u);
  EXPECT_EQ(copy[9], 9);

  SmallVector<int, 2> moved(std::move(heap_backed));
  ASSERT_EQ(moved.size(), 10u);
  EXPECT_EQ(moved[5], 5);
  EXPECT_EQ(heap_backed.size(), 0u);

  SmallVector<int, 2> inline_src;
  inline_src.push_back(7);
  SmallVector<int, 2> inline_moved(std::move(inline_src));
  ASSERT_EQ(inline_moved.size(), 1u);
  EXPECT_EQ(inline_moved[0], 7);

  // Assign heap-backed over inline and vice versa.
  inline_moved = copy;
  EXPECT_EQ(inline_moved.size(), 10u);
  copy = SmallVector<int, 2>();
  EXPECT_TRUE(copy.empty());
}

// --- FlatSet ----------------------------------------------------------------

TEST(FlatSet, InsertContainsErase) {
  FlatSet s;
  EXPECT_FALSE(s.Contains(42));
  EXPECT_TRUE(s.Insert(42));
  EXPECT_FALSE(s.Insert(42));  // duplicate
  EXPECT_TRUE(s.Contains(42));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Erase(42));
  EXPECT_FALSE(s.Erase(42));
  EXPECT_FALSE(s.Contains(42));
  EXPECT_EQ(s.size(), 0u);
}

TEST(FlatSet, DuplicateInsertAtLoadThresholdDoesNotRehash) {
  FlatSet s;
  // Fill to exactly the grow threshold (next new insert would rehash).
  for (uint64_t i = 1; i <= 4; ++i) {
    s.Insert(i);
  }
  size_t cap = s.capacity();
  EXPECT_FALSE(s.Insert(3));  // duplicate: pure lookup
  EXPECT_EQ(s.capacity(), cap);
  EXPECT_TRUE(s.Insert(99));  // genuinely new: now it may grow
  EXPECT_TRUE(s.Contains(99));
}

TEST(FlatTable, DuplicateGetOrInsertAtLoadThresholdDoesNotRehash) {
  FlatTable<int> t;
  for (uint64_t i = 1; i <= 4; ++i) {
    t.GetOrInsert(i) = static_cast<int>(i);
  }
  size_t cap = t.capacity();
  EXPECT_EQ(t.GetOrInsert(3), 3);  // existing: pure lookup
  EXPECT_EQ(t.capacity(), cap);
}

TEST(FlatSet, GrowsThroughManyInserts) {
  FlatSet s;
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(s.Insert(i * 0x9e3779b9ull));
  }
  EXPECT_EQ(s.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(s.Contains(i * 0x9e3779b9ull));
  }
  EXPECT_FALSE(s.Contains(10001 * 0x9e3779b9ull));
}

// Deletion-heavy churn: backward-shift erase must keep every remaining key
// findable. This is the workload tombstone schemes degrade on and the one
// that catches shift bugs (keys displaced across the erased slot).
TEST(FlatSet, ChurnMatchesStdReference) {
  lxfi::Rng rng(1234);
  FlatSet s;
  std::unordered_set<uint64_t> ref;
  for (int step = 0; step < 200000; ++step) {
    // Narrow key space (512) on a table that grows to a few hundred slots:
    // plenty of probe-chain overlap, plenty of wrap-around at the array end.
    uint64_t key = rng.Below(512);
    switch (rng.Below(3)) {
      case 0:
        EXPECT_EQ(s.Insert(key), ref.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(s.Erase(key), ref.erase(key) != 0);
        break;
      default:
        EXPECT_EQ(s.Contains(key), ref.count(key) != 0);
        break;
    }
    ASSERT_EQ(s.size(), ref.size());
  }
  // Final full sweep: everything the reference holds must be present.
  for (uint64_t key : ref) {
    ASSERT_TRUE(s.Contains(key)) << "lost key " << key << " after churn";
  }
}

// --- FlatTable --------------------------------------------------------------

TEST(FlatTable, GetOrInsertFindErase) {
  FlatTable<int> t;
  EXPECT_EQ(t.Find(7), nullptr);
  t.GetOrInsert(7) = 70;
  ASSERT_NE(t.Find(7), nullptr);
  EXPECT_EQ(*t.Find(7), 70);
  t.GetOrInsert(7) = 71;  // same slot
  EXPECT_EQ(*t.Find(7), 71);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Erase(7));
  EXPECT_EQ(t.Find(7), nullptr);
  EXPECT_FALSE(t.Erase(7));
}

TEST(FlatTable, InsertReportsNewVsOverwrite) {
  FlatTable<int> t;
  EXPECT_TRUE(t.Insert(1, 10));
  EXPECT_FALSE(t.Insert(1, 11));
  EXPECT_EQ(*t.Find(1), 11);
}

TEST(FlatTable, RehashPreservesValues) {
  FlatTable<uint64_t> t;
  for (uint64_t i = 0; i < 5000; ++i) {
    t.GetOrInsert(i) = i * 3;
  }
  EXPECT_EQ(t.size(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_NE(t.Find(i), nullptr);
    ASSERT_EQ(*t.Find(i), i * 3);
  }
}

TEST(FlatTable, EraseIfRemovesMatchingEntries) {
  FlatTable<int> t;
  for (uint64_t i = 0; i < 100; ++i) {
    t.GetOrInsert(i) = static_cast<int>(i % 2);
  }
  EXPECT_EQ(t.EraseIf([](uint64_t, const int& v) { return v == 1; }), 50u);
  EXPECT_EQ(t.size(), 50u);
  t.ForEach([](uint64_t key, const int& v) {
    EXPECT_EQ(v, 0);
    EXPECT_EQ(key % 2, 0u);
  });
}

TEST(FlatTable, ChurnMatchesStdReference) {
  lxfi::Rng rng(77);
  FlatTable<uint32_t> t;
  std::unordered_map<uint64_t, uint32_t> ref;
  for (int step = 0; step < 200000; ++step) {
    uint64_t key = rng.Below(384);
    switch (rng.Below(4)) {
      case 0:
      case 1: {
        auto value = static_cast<uint32_t>(rng.Below(1u << 30));
        t.GetOrInsert(key) = value;
        ref[key] = value;
        break;
      }
      case 2:
        EXPECT_EQ(t.Erase(key), ref.erase(key) != 0);
        break;
      default: {
        auto it = ref.find(key);
        const uint32_t* found = t.Find(key);
        if (it == ref.end()) {
          ASSERT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          ASSERT_EQ(*found, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  for (const auto& [key, value] : ref) {
    const uint32_t* found = t.Find(key);
    ASSERT_NE(found, nullptr) << "lost key " << key << " after churn";
    ASSERT_EQ(*found, value);
  }
}

// SmallVector values inside FlatTable slots must survive the moves done by
// rehash and backward-shift erase (the CapTable/WriterSet configuration).
TEST(FlatTable, SmallVectorValuesSurviveChurn) {
  lxfi::Rng rng(5);
  FlatTable<SmallVector<uint64_t, 2>> t;
  std::unordered_map<uint64_t, std::vector<uint64_t>> ref;
  for (int step = 0; step < 50000; ++step) {
    uint64_t key = rng.Below(256);
    if (rng.Below(3) != 0) {
      uint64_t value = rng.Below(1000);
      t.GetOrInsert(key).push_back(value);
      ref[key].push_back(value);
    } else {
      t.Erase(key);
      ref.erase(key);
    }
  }
  ASSERT_EQ(t.size(), ref.size());
  for (const auto& [key, expect] : ref) {
    const SmallVector<uint64_t, 2>* got = t.Find(key);
    ASSERT_NE(got, nullptr);
    ASSERT_EQ(got->size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      ASSERT_EQ((*got)[i], expect[i]);
    }
  }
}

// --- EnforcementContext memos ----------------------------------------------

TEST(EnforcementContext, WriteMemoHitsWithinFilledRange) {
  lxfi::EnforcementContext ec;
  EXPECT_FALSE(ec.WriteMemoHit(0x1000, 8));
  ec.FillWriteMemo(0x1000, 0x2000, lxfi::RevocationEpoch::Current());
  EXPECT_TRUE(ec.WriteMemoHit(0x1000, 8));
  EXPECT_TRUE(ec.WriteMemoHit(0x1ff8, 8));
  EXPECT_TRUE(ec.WriteMemoHit(0x1000, 0x1000));
  EXPECT_FALSE(ec.WriteMemoHit(0xfff, 8));    // starts before
  EXPECT_FALSE(ec.WriteMemoHit(0x1ff9, 8));   // runs past the end
  EXPECT_FALSE(ec.WriteMemoHit(0x3000, 8));   // disjoint
}

TEST(EnforcementContext, EmptyRangeIsNeverMemoized) {
  lxfi::EnforcementContext ec;
  ec.FillWriteMemo(0x1000, 0x1000, lxfi::RevocationEpoch::Current());
  EXPECT_FALSE(ec.WriteMemoHit(0x1000, 8));
}

TEST(EnforcementContext, RevocationEpochInvalidatesMemos) {
  lxfi::EnforcementContext ec;
  ec.FillWriteMemo(0x1000, 0x2000, lxfi::RevocationEpoch::Current());
  ec.FillCallMemo(0xffffffff81000100ull, lxfi::RevocationEpoch::Current());
  EXPECT_TRUE(ec.WriteMemoHit(0x1000, 8));
  EXPECT_TRUE(ec.CallMemoHit(0xffffffff81000100ull));
  lxfi::RevocationEpoch::Bump();
  EXPECT_FALSE(ec.WriteMemoHit(0x1000, 8));
  EXPECT_FALSE(ec.CallMemoHit(0xffffffff81000100ull));
  // Refill re-arms at the new epoch.
  ec.FillWriteMemo(0x1000, 0x2000, lxfi::RevocationEpoch::Current());
  EXPECT_TRUE(ec.WriteMemoHit(0x1000, 8));
}

TEST(EnforcementContext, StaleEpochFillNeverValidates) {
  // The SMP fill protocol passes the epoch read *before* the table probe: if
  // a revoke raced the probe, the memo must be born invalid.
  lxfi::EnforcementContext ec;
  uint64_t before = lxfi::RevocationEpoch::Current();
  lxfi::RevocationEpoch::Bump();  // revoke lands between epoch read and fill
  ec.FillWriteMemo(0x1000, 0x2000, before);
  EXPECT_FALSE(ec.WriteMemoHit(0x1000, 8));
  ec.FillCallMemo(0xffffffff81000100ull, before);
  EXPECT_FALSE(ec.CallMemoHit(0xffffffff81000100ull));
}

TEST(EnforcementContext, CapTableRevokeInvalidatesAnyMemo) {
  lxfi::EnforcementContext ec;
  ec.FillWriteMemo(0x5000, 0x6000, lxfi::RevocationEpoch::Current());
  // A revoke on some unrelated table still invalidates (conservative).
  lxfi::CapTable other;
  other.GrantWrite(0x9000, 64);
  EXPECT_TRUE(other.RevokeWriteOverlapping(0x9000, 64));
  EXPECT_FALSE(ec.WriteMemoHit(0x5000, 8));
}

}  // namespace
