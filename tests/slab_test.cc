// Slab allocator tests, including the adjacency and reuse properties the
// CAN BCM exploit reproduction relies on.
#include <gtest/gtest.h>

#include "src/base/arena.h"
#include "src/kernel/kmalloc.h"
#include "src/kernel/panic.h"

namespace {

class SlabTest : public ::testing::Test {
 protected:
  SlabTest() : arena_(8 << 20), slab_(&arena_) {}

  lxfi::Arena arena_;
  kern::SlabAllocator slab_;
};

TEST_F(SlabTest, AllocZeroReturnsNull) { EXPECT_EQ(slab_.Alloc(0), nullptr); }

TEST_F(SlabTest, AllocationIsZeroed) {
  auto* p = static_cast<uint8_t*>(slab_.Alloc(256));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(p[i], 0) << "byte " << i;
  }
}

TEST_F(SlabTest, RequestedAndUsableSizes) {
  void* p = slab_.Alloc(100);
  EXPECT_EQ(slab_.AllocSize(p), 100u);
  EXPECT_EQ(slab_.UsableSize(p), 128u);  // class capacity, like ksize()
  EXPECT_EQ(slab_.AllocSize(reinterpret_cast<void*>(0x1234)), 0u);
}

TEST_F(SlabTest, ConsecutiveSameClassAllocationsAreAdjacent) {
  auto* a = static_cast<char*>(slab_.Alloc(24));
  auto* b = static_cast<char*>(slab_.Alloc(24));
  EXPECT_EQ(b - a, 32) << "same-class objects must pack contiguously";
}

TEST_F(SlabTest, FreedSlotIsReusedLifo) {
  void* a = slab_.Alloc(24);
  void* b = slab_.Alloc(24);
  slab_.Free(a);
  void* c = slab_.Alloc(16);  // same 32-byte class
  EXPECT_EQ(c, a) << "LIFO freelist: the freed slot fills first";
  (void)b;
}

TEST_F(SlabTest, DifferentClassesDoNotInterfere) {
  void* a = slab_.Alloc(24);
  slab_.Free(a);
  void* big = slab_.Alloc(200);  // class 256
  EXPECT_NE(big, a);
}

TEST_F(SlabTest, LiveTracking) {
  void* p = slab_.Alloc(64);
  EXPECT_TRUE(slab_.IsLive(p));
  slab_.Free(p);
  EXPECT_FALSE(slab_.IsLive(p));
}

TEST_F(SlabTest, DoubleFreePanics) {
  void* p = slab_.Alloc(64);
  slab_.Free(p);
  EXPECT_THROW(slab_.Free(p), kern::KernelPanic);
}

TEST_F(SlabTest, FreeUnknownPointerPanics) {
  int x;
  EXPECT_THROW(slab_.Free(&x), kern::KernelPanic);
}

TEST_F(SlabTest, FreeNullIsNoop) { slab_.Free(nullptr); }

TEST_F(SlabTest, LargeAllocationSpansPages) {
  auto* p = static_cast<uint8_t*>(slab_.Alloc(3 * 4096 + 100));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(slab_.AllocSize(p), 3u * 4096 + 100);
  EXPECT_EQ(slab_.UsableSize(p), 4u * 4096);
  p[3 * 4096 + 99] = 0xff;  // touches the last byte without faulting
  slab_.Free(p);
}

TEST_F(SlabTest, PageExhaustionReturnsNull) {
  lxfi::Arena tiny(16 << 10);
  kern::SlabAllocator slab(&tiny);
  void* p = nullptr;
  for (int i = 0; i < 1000; ++i) {
    void* q = slab.Alloc(2048);
    if (q == nullptr) {
      break;
    }
    p = q;
  }
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(slab.Alloc(2048), nullptr) << "arena exhausted";
}

// Parameterized sweep: every size class behaves uniformly.
class SlabClassSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SlabClassSweep, FillFreeRefillWholePage) {
  lxfi::Arena arena(4 << 20);
  kern::SlabAllocator slab(&arena);
  size_t size = GetParam();
  size_t per_page = 4096 / size;
  std::vector<void*> objs;
  for (size_t i = 0; i < per_page; ++i) {
    void* p = slab.Alloc(size);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(slab.UsableSize(p), size);
    objs.push_back(p);
  }
  // All from one page, ascending.
  for (size_t i = 1; i < objs.size(); ++i) {
    EXPECT_EQ(static_cast<char*>(objs[i]) - static_cast<char*>(objs[i - 1]),
              static_cast<ptrdiff_t>(size));
  }
  for (void* p : objs) {
    slab.Free(p);
  }
  // Refill reuses the same page (no new page allocated).
  size_t pages_before = slab.pages_allocated();
  for (size_t i = 0; i < per_page; ++i) {
    ASSERT_NE(slab.Alloc(size), nullptr);
  }
  EXPECT_EQ(slab.pages_allocated(), pages_before);
}

INSTANTIATE_TEST_SUITE_P(Classes, SlabClassSweep,
                         ::testing::Values(32, 64, 128, 256, 512, 1024, 2048, 4096));

}  // namespace
