// Slab allocator tests, including the adjacency and reuse properties the
// CAN BCM exploit reproduction relies on.
#include <gtest/gtest.h>

#include "src/base/arena.h"
#include "src/kernel/kmalloc.h"
#include "src/kernel/panic.h"

namespace {

class SlabTest : public ::testing::Test {
 protected:
  SlabTest() : arena_(8 << 20), slab_(&arena_) {}

  lxfi::Arena arena_;
  kern::SlabAllocator slab_;
};

TEST_F(SlabTest, AllocZeroReturnsNull) { EXPECT_EQ(slab_.Alloc(0), nullptr); }

TEST_F(SlabTest, AllocationIsZeroed) {
  auto* p = static_cast<uint8_t*>(slab_.Alloc(256));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(p[i], 0) << "byte " << i;
  }
}

TEST_F(SlabTest, RequestedAndUsableSizes) {
  void* p = slab_.Alloc(100);
  EXPECT_EQ(slab_.AllocSize(p), 100u);
  EXPECT_EQ(slab_.UsableSize(p), 128u);  // class capacity, like ksize()
  EXPECT_EQ(slab_.AllocSize(reinterpret_cast<void*>(0x1234)), 0u);
}

TEST_F(SlabTest, ConsecutiveSameClassAllocationsAreAdjacent) {
  auto* a = static_cast<char*>(slab_.Alloc(24));
  auto* b = static_cast<char*>(slab_.Alloc(24));
  EXPECT_EQ(b - a, 32) << "same-class objects must pack contiguously";
}

TEST_F(SlabTest, FreedSlotIsReusedLifo) {
  void* a = slab_.Alloc(24);
  void* b = slab_.Alloc(24);
  slab_.Free(a);
  void* c = slab_.Alloc(16);  // same 32-byte class
  EXPECT_EQ(c, a) << "LIFO freelist: the freed slot fills first";
  (void)b;
}

TEST_F(SlabTest, DifferentClassesDoNotInterfere) {
  void* a = slab_.Alloc(24);
  slab_.Free(a);
  void* big = slab_.Alloc(200);  // class 256
  EXPECT_NE(big, a);
}

TEST_F(SlabTest, LiveTracking) {
  void* p = slab_.Alloc(64);
  EXPECT_TRUE(slab_.IsLive(p));
  slab_.Free(p);
  EXPECT_FALSE(slab_.IsLive(p));
}

TEST_F(SlabTest, DoubleFreePanics) {
  void* p = slab_.Alloc(64);
  slab_.Free(p);
  EXPECT_THROW(slab_.Free(p), kern::KernelPanic);
}

TEST_F(SlabTest, FreeUnknownPointerPanics) {
  int x;
  EXPECT_THROW(slab_.Free(&x), kern::KernelPanic);
}

TEST_F(SlabTest, FreeNullIsNoop) { slab_.Free(nullptr); }

TEST_F(SlabTest, LargeAllocationSpansPages) {
  auto* p = static_cast<uint8_t*>(slab_.Alloc(3 * 4096 + 100));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(slab_.AllocSize(p), 3u * 4096 + 100);
  EXPECT_EQ(slab_.UsableSize(p), 4u * 4096);
  p[3 * 4096 + 99] = 0xff;  // touches the last byte without faulting
  slab_.Free(p);
}

TEST_F(SlabTest, PageExhaustionReturnsNull) {
  lxfi::Arena tiny(16 << 10);
  kern::SlabAllocator slab(&tiny);
  void* p = nullptr;
  for (int i = 0; i < 1000; ++i) {
    void* q = slab.Alloc(2048);
    if (q == nullptr) {
      break;
    }
    p = q;
  }
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(slab.Alloc(2048), nullptr) << "arena exhausted";
}

// Parameterized sweep: every size class behaves uniformly.
class SlabClassSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SlabClassSweep, FillFreeRefillWholePage) {
  lxfi::Arena arena(4 << 20);
  kern::SlabAllocator slab(&arena);
  size_t size = GetParam();
  size_t per_page = 4096 / size;
  std::vector<void*> objs;
  for (size_t i = 0; i < per_page; ++i) {
    void* p = slab.Alloc(size);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(slab.UsableSize(p), size);
    objs.push_back(p);
  }
  // All from one page, ascending.
  for (size_t i = 1; i < objs.size(); ++i) {
    EXPECT_EQ(static_cast<char*>(objs[i]) - static_cast<char*>(objs[i - 1]),
              static_cast<ptrdiff_t>(size));
  }
  for (void* p : objs) {
    slab.Free(p);
  }
  // Refill reuses the same page (no new page allocated).
  size_t pages_before = slab.pages_allocated();
  for (size_t i = 0; i < per_page; ++i) {
    ASSERT_NE(slab.Alloc(size), nullptr);
  }
  EXPECT_EQ(slab.pages_allocated(), pages_before);
}

INSTANTIATE_TEST_SUITE_P(Classes, SlabClassSweep,
                         ::testing::Values(32, 64, 128, 256, 512, 1024, 2048, 4096));

// --- partitioned heaps (allocator level) -------------------------------------

class SlabPartitionTest : public ::testing::Test {
 protected:
  SlabPartitionTest() : arena_(16 << 20), slab_(&arena_) {
    EXPECT_TRUE(slab_.EnablePartitions(/*region_bytes=*/4 << 20, /*slot_bytes=*/1 << 20));
  }

  lxfi::Arena arena_;
  kern::SlabAllocator slab_;
};

TEST_F(SlabPartitionTest, PartitionObjectsStayInsideSlotSpan) {
  int id = slab_.CreatePartition();
  ASSERT_NE(id, kern::SlabAllocator::kNoPartition);
  uintptr_t lo = 0, hi = 0;
  ASSERT_TRUE(slab_.PartitionSpan(id, &lo, &hi));
  EXPECT_EQ(hi - lo, 1u << 20);
  for (size_t size : {16, 100, 2048, 5000}) {
    auto addr = reinterpret_cast<uintptr_t>(slab_.AllocIn(id, size));
    ASSERT_NE(addr, 0u);
    EXPECT_GE(addr, lo);
    EXPECT_LT(addr + size, hi);
    EXPECT_EQ(slab_.PartitionOf(reinterpret_cast<void*>(addr)), id);
  }
  // Shared-heap allocations classify as no partition.
  void* shared_obj = slab_.Alloc(64);
  EXPECT_EQ(slab_.PartitionOf(shared_obj), kern::SlabAllocator::kNoPartition);
}

TEST_F(SlabPartitionTest, PartitionsDoNotShareSlabPages) {
  int a = slab_.CreatePartition();
  int b = slab_.CreatePartition();
  // Same size class, different partitions: never the same page, even though
  // a shared heap would pack them adjacently.
  auto* pa = static_cast<char*>(slab_.AllocIn(a, 24));
  auto* pb = static_cast<char*>(slab_.AllocIn(b, 24));
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  EXPECT_NE(reinterpret_cast<uintptr_t>(pa) / 4096, reinterpret_cast<uintptr_t>(pb) / 4096);
  // And a freed slot in one partition is never recycled into the other.
  slab_.Free(pa);
  auto* pb2 = static_cast<char*>(slab_.AllocIn(b, 24));
  EXPECT_NE(pb2, pa);
  // While the partition's own freelist is LIFO, like the shared heap.
  auto* pa2 = static_cast<char*>(slab_.AllocIn(a, 24));
  EXPECT_EQ(pa2, pa);
}

TEST_F(SlabPartitionTest, SealedPartitionRefusesAllocButAllowsFree) {
  int id = slab_.CreatePartition();
  void* p = slab_.AllocIn(id, 64);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(slab_.SealPartition(id));
  EXPECT_EQ(slab_.AllocIn(id, 64), nullptr);
  slab_.Free(p);  // quarantine still drains
  EXPECT_EQ(slab_.partition_live_objects(id), 0u);
}

TEST_F(SlabPartitionTest, TeardownReclaimsEverythingAndRecyclesSlotLifo) {
  int id = slab_.CreatePartition();
  uintptr_t lo = 0, hi = 0;
  ASSERT_TRUE(slab_.PartitionSpan(id, &lo, &hi));
  size_t live_before = slab_.live_objects();
  for (int i = 0; i < 500; ++i) {
    ASSERT_NE(slab_.AllocIn(id, 48), nullptr);
  }
  EXPECT_EQ(slab_.partition_live_objects(id), 500u);
  EXPECT_EQ(slab_.TeardownPartition(id), 500u) << "teardown reports reclaimed objects";
  EXPECT_EQ(slab_.live_objects(), live_before);
  EXPECT_FALSE(slab_.PartitionSpan(id, &lo, &hi)) << "torn-down id no longer resolves";
  // The slot goes back LIFO: the next partition reuses the same span.
  int next = slab_.CreatePartition();
  uintptr_t nlo = 0, nhi = 0;
  ASSERT_TRUE(slab_.PartitionSpan(next, &nlo, &nhi));
  EXPECT_EQ(nlo, lo);
  EXPECT_EQ(nhi, hi);
  // And the recycled slot allocates from scratch (no stale freelist).
  void* p = slab_.AllocIn(next, 32);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(slab_.partition_live_objects(next), 1u);
}

TEST_F(SlabPartitionTest, ExhaustedSlotFallsBackToSharedHeap) {
  int id = slab_.CreatePartition();
  uintptr_t lo = 0, hi = 0;
  ASSERT_TRUE(slab_.PartitionSpan(id, &lo, &hi));
  // Burn through the 1 MiB slot with large objects, then keep going.
  bool overflowed = false;
  for (int i = 0; i < 300; ++i) {
    auto addr = reinterpret_cast<uintptr_t>(slab_.AllocIn(id, 8192));
    ASSERT_NE(addr, 0u) << "fallback must serve allocation " << i;
    overflowed = overflowed || addr < lo || addr >= hi;
  }
  EXPECT_TRUE(overflowed) << "slot exhaustion must degrade to the shared heap";
}

TEST(SlabPartitionSeed, SeedRotatesSlotHandOutDeterministically) {
  for (uint64_t seed : {0ull, 5ull}) {
    lxfi::Arena arena(16 << 20);
    kern::SlabAllocator slab(&arena);
    ASSERT_TRUE(slab.EnablePartitions(4 << 20, 1 << 20, seed));
    uintptr_t base = slab.region_base();
    for (int i = 0; i < 4; ++i) {
      int id = slab.CreatePartition();
      uintptr_t lo = 0, hi = 0;
      ASSERT_TRUE(slab.PartitionSpan(id, &lo, &hi));
      EXPECT_EQ((lo - base) >> 20, (i + seed) % 4) << "seed " << seed << " partition " << i;
    }
    // All four slots claimed: the next creation fails cleanly.
    EXPECT_EQ(slab.CreatePartition(), kern::SlabAllocator::kNoPartition);
  }
}

}  // namespace
