// Kernel timer wheel and the e1000 watchdog: another module-written
// function-pointer surface guarded by the indirect-call check.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/timer.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/mem.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"
#include "src/modules/e1000/e1000.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

TEST(TimerWheel, FiresAtExpiry) {
  kern::Kernel k;
  kern::TimerWheel* wheel = kern::GetTimerWheel(&k);
  int fired = 0;
  kern::TimerList timer;
  timer.function = k.funcs().Register<void(void*)>(kern::TextKind::kKernelText, "tick",
                                                   [&](void*) { ++fired; });
  EXPECT_EQ(wheel->ModTimer(&timer, 5), 0);
  EXPECT_EQ(wheel->Advance(4), 0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel->Advance(1), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.pending);
  // One-shot: no refire.
  EXPECT_EQ(wheel->Advance(100), 0);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, RearmFromHandler) {
  kern::Kernel k;
  kern::TimerWheel* wheel = kern::GetTimerWheel(&k);
  int fired = 0;
  kern::TimerList timer;
  timer.function = k.funcs().Register<void(void*)>(
      kern::TextKind::kKernelText, "periodic", [&](void* data) {
        ++fired;
        if (fired < 3) {
          wheel->ModTimer(static_cast<kern::TimerList*>(data), wheel->now() + 2);
        }
      });
  timer.data = &timer;
  wheel->ModTimer(&timer, 2);
  for (int i = 0; i < 10; ++i) {
    wheel->Advance(1);
  }
  EXPECT_EQ(fired, 3);
}

TEST(TimerWheel, DelTimerCancels) {
  kern::Kernel k;
  kern::TimerWheel* wheel = kern::GetTimerWheel(&k);
  int fired = 0;
  kern::TimerList timer;
  timer.function = k.funcs().Register<void(void*)>(kern::TextKind::kKernelText, "never",
                                                   [&](void*) { ++fired; });
  wheel->ModTimer(&timer, 3);
  EXPECT_EQ(wheel->DelTimer(&timer), 1);
  EXPECT_EQ(wheel->DelTimer(&timer), 0);
  wheel->Advance(10);
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheel, ModTimerRearmsPending) {
  kern::Kernel k;
  kern::TimerWheel* wheel = kern::GetTimerWheel(&k);
  int fired = 0;
  kern::TimerList timer;
  timer.function = k.funcs().Register<void(void*)>(kern::TextKind::kKernelText, "late",
                                                   [&](void*) { ++fired; });
  wheel->ModTimer(&timer, 2);
  EXPECT_EQ(wheel->ModTimer(&timer, 8), 1) << "rearm of a pending timer returns 1";
  wheel->Advance(5);
  EXPECT_EQ(fired, 0) << "the rearm moved the deadline";
  wheel->Advance(5);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, FiresInDeadlineOrderWithFifoTies) {
  // Regression for the min-heap rewrite: timers armed out of order fire in
  // expires order, and equal deadlines fire in arm order.
  kern::Kernel k;
  kern::TimerWheel* wheel = kern::GetTimerWheel(&k);
  std::vector<int> order;
  kern::TimerList timers[6];
  for (int i = 0; i < 6; ++i) {
    timers[i].function = k.funcs().Register<void(void*)>(
        kern::TextKind::kKernelText, "ordered" + std::to_string(i),
        [&order, i](void*) { order.push_back(i); });
  }
  // Armed shuffled: deadlines 7, 3, 5, 3, 1, 3. Ties at 3 must fire in the
  // order they were armed (indices 1, 3, 5).
  wheel->ModTimer(&timers[0], 7);
  wheel->ModTimer(&timers[1], 3);
  wheel->ModTimer(&timers[2], 5);
  wheel->ModTimer(&timers[3], 3);
  wheel->ModTimer(&timers[4], 1);
  wheel->ModTimer(&timers[5], 3);
  EXPECT_EQ(wheel->pending_count(), 6u);
  EXPECT_EQ(wheel->Advance(10), 6);
  EXPECT_EQ(order, (std::vector<int>{4, 1, 3, 5, 2, 0}));
  EXPECT_EQ(wheel->pending_count(), 0u);
}

TEST(TimerWheel, PartialAdvanceFiresOnlyTheExpiredPrefix) {
  kern::Kernel k;
  kern::TimerWheel* wheel = kern::GetTimerWheel(&k);
  std::vector<int> order;
  kern::TimerList timers[3];
  for (int i = 0; i < 3; ++i) {
    timers[i].function = k.funcs().Register<void(void*)>(
        kern::TextKind::kKernelText, "prefix" + std::to_string(i),
        [&order, i](void*) { order.push_back(i); });
  }
  wheel->ModTimer(&timers[0], 9);
  wheel->ModTimer(&timers[1], 2);
  wheel->ModTimer(&timers[2], 6);
  EXPECT_EQ(wheel->Advance(6), 2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(wheel->pending_count(), 1u);
  // A rearm of a pending timer replaces its entry (never duplicates it).
  wheel->ModTimer(&timers[0], 20);
  EXPECT_EQ(wheel->pending_count(), 1u);
  EXPECT_EQ(wheel->Advance(20), 1);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

class WatchdogTest : public ::testing::TestWithParam<bool> {};

TEST_P(WatchdogTest, E1000WatchdogRunsAndRearms) {
  Bench bench(GetParam());
  mods::PlugInE1000Device(bench.kernel.get());
  kern::Module* m = bench.kernel->LoadModule(mods::E1000ModuleDef());
  ASSERT_NE(m, nullptr);
  auto st = mods::GetE1000(*m);
  ASSERT_NE(st->priv()->watchdog, nullptr);
  kern::TimerWheel* wheel = kern::GetTimerWheel(bench.kernel.get());
  EXPECT_EQ(st->priv()->watchdog_runs, 0u);
  wheel->Advance(10);
  EXPECT_EQ(st->priv()->watchdog_runs, 1u);
  for (int i = 0; i < 3; ++i) {
    wheel->Advance(10);
  }
  EXPECT_GE(st->priv()->watchdog_runs, 3u) << "the watchdog rearms itself";
  if (GetParam()) {
    EXPECT_EQ(bench.rt->violation_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, WatchdogTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

TEST(WatchdogSecurity, CorruptedTimerFunctionBlocked) {
  Bench bench(/*isolated=*/true);
  mods::PlugInE1000Device(bench.kernel.get());
  kern::Module* m = bench.kernel->LoadModule(mods::E1000ModuleDef());
  ASSERT_NE(m, nullptr);
  auto st = mods::GetE1000(*m);
  // An exploit overwrites the timer's function pointer with a user-space
  // payload; the expiry-time indirect call must refuse to jump there.
  uintptr_t payload = bench.kernel->funcs().Register<void(void*)>(
      kern::TextKind::kUserText, "timer_payload", [](void*) {});
  st->priv()->watchdog->function = payload;
  EXPECT_THROW(kern::GetTimerWheel(bench.kernel.get())->Advance(10), lxfi::LxfiViolation);
}

TEST(WatchdogSecurity, WrongTypeFunctionInTimerBlocked) {
  Bench bench(/*isolated=*/true);
  mods::PlugInE1000Device(bench.kernel.get());
  kern::Module* m = bench.kernel->LoadModule(mods::E1000ModuleDef());
  auto st = mods::GetE1000(*m);
  // Even the module's own code is rejected if its annotations don't match
  // timer_fn's (here: the xmit function).
  st->priv()->watchdog->function = m->FuncAddr("e1000_xmit");
  try {
    kern::GetTimerWheel(bench.kernel.get())->Advance(10);
    FAIL() << "expected a violation";
  } catch (const lxfi::LxfiViolation& v) {
    EXPECT_EQ(v.kind(), lxfi::ViolationKind::kAnnotationMismatch);
  }
}

}  // namespace
