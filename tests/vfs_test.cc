// VFS core + ramfs integration: mount/path-walk/create/read/write/stat/
// unlink through the checked dispatch path, in stock and LXFI-isolated
// configurations. The isolated runs must complete the benign workload with
// zero violations (the Figure 12 "it still works" half of the claim).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/lxfi/runtime.h"
#include "src/modules/ramfs/ramfs.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

class VfsTest : public ::testing::TestWithParam<bool> {
 protected:
  VfsTest() : bench_(GetParam()) {
    vfs_ = kern::GetVfs(bench_.kernel.get());
    mod_ = bench_.kernel->LoadModule(mods::RamfsModuleDef());
  }

  // Stages `data` in simulated user memory and returns its user VA.
  uintptr_t StageUser(const void* data, size_t n) {
    std::memcpy(bench_.kernel->user().UserPtr(kUbuf), data, n);
    return kUbuf;
  }
  const uint8_t* UserData() const { return bench_.kernel->user().UserPtr(kUbuf); }

  int WriteFile(const char* path, const void* data, size_t n) {
    int err = 0;
    kern::File* f = vfs_->Open(path, kern::kOCreate, &err);
    if (f == nullptr) {
      return err;
    }
    int64_t wrote = vfs_->Write(f, StageUser(data, n), n);
    int rc = vfs_->Close(f);
    if (wrote != static_cast<int64_t>(n)) {
      return wrote < 0 ? static_cast<int>(wrote) : -kern::kEinval;
    }
    return rc;
  }

  static constexpr uintptr_t kUbuf = 0x1000;

  Bench bench_;
  kern::Vfs* vfs_ = nullptr;
  kern::Module* mod_ = nullptr;
};

TEST_P(VfsTest, ModuleLoadsAndRegistersFilesystem) {
  ASSERT_NE(mod_, nullptr);
  EXPECT_NE(vfs_->FindFilesystem("ramfs"), nullptr);
}

TEST_P(VfsTest, MountExposesRootDirectory) {
  ASSERT_NE(mod_, nullptr);
  kern::SuperBlock* sb = vfs_->Mount("ramfs", "/mnt");
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(vfs_->SuperAt("/mnt"), sb);
  kern::VfsStat st;
  ASSERT_EQ(vfs_->Stat("/mnt", &st), 0);
  EXPECT_NE(st.mode & kern::kIfDir, 0u);
  EXPECT_EQ(vfs_->Unmount("/mnt"), 0);
  EXPECT_EQ(vfs_->SuperAt("/mnt"), nullptr);
}

TEST_P(VfsTest, CreateWriteReadStatUnlink) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  const char payload[] = "the quick brown fox";
  ASSERT_EQ(WriteFile("/mnt/f0", payload, sizeof(payload)), 0);

  kern::VfsStat st;
  ASSERT_EQ(vfs_->Stat("/mnt/f0", &st), 0);
  EXPECT_EQ(st.size, sizeof(payload));
  EXPECT_NE(st.mode & kern::kIfReg, 0u);
  EXPECT_EQ(st.nlink, 1u);

  int err = 0;
  kern::File* f = vfs_->Open("/mnt/f0", 0, &err);
  ASSERT_NE(f, nullptr) << err;
  std::memset(bench_.kernel->user().UserPtr(kUbuf), 0, sizeof(payload));
  EXPECT_EQ(vfs_->Read(f, kUbuf, sizeof(payload)), static_cast<int64_t>(sizeof(payload)));
  EXPECT_EQ(std::memcmp(UserData(), payload, sizeof(payload)), 0);
  // Sequential read hits EOF.
  EXPECT_EQ(vfs_->Read(f, kUbuf, 16), 0);
  EXPECT_EQ(vfs_->Close(f), 0);

  EXPECT_EQ(vfs_->Unlink("/mnt/f0"), 0);
  EXPECT_EQ(vfs_->Stat("/mnt/f0", &st), -kern::kEnoent);
}

TEST_P(VfsTest, DirectoriesNestAndWalk) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  ASSERT_EQ(vfs_->Mkdir("/mnt/a"), 0);
  ASSERT_EQ(vfs_->Mkdir("/mnt/a/b"), 0);
  const char payload[] = "nested";
  ASSERT_EQ(WriteFile("/mnt/a/b/f", payload, sizeof(payload)), 0);
  kern::VfsStat st;
  ASSERT_EQ(vfs_->Stat("/mnt/a/b/f", &st), 0);
  EXPECT_EQ(st.size, sizeof(payload));

  // Remove leaf-first; non-empty rmdir refuses.
  EXPECT_EQ(vfs_->Rmdir("/mnt/a"), -kern::kEnotempty);
  EXPECT_EQ(vfs_->Unlink("/mnt/a/b/f"), 0);
  EXPECT_EQ(vfs_->Rmdir("/mnt/a/b"), 0);
  EXPECT_EQ(vfs_->Rmdir("/mnt/a"), 0);
}

TEST_P(VfsTest, FileGrowsAcrossReallocBoundaries) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  int err = 0;
  kern::File* f = vfs_->Open("/mnt/big", kern::kOCreate, &err);
  ASSERT_NE(f, nullptr);
  uint8_t chunk[512];
  constexpr int kChunks = 10;  // 5 KiB: several capacity doublings from 64
  for (int i = 0; i < kChunks; ++i) {
    std::memset(chunk, 'a' + i, sizeof(chunk));
    ASSERT_EQ(vfs_->Write(f, StageUser(chunk, sizeof(chunk)), sizeof(chunk)),
              static_cast<int64_t>(sizeof(chunk)));
  }
  ASSERT_EQ(vfs_->Seek(f, 0), 0);
  for (int i = 0; i < kChunks; ++i) {
    ASSERT_EQ(vfs_->Read(f, kUbuf, sizeof(chunk)), static_cast<int64_t>(sizeof(chunk)));
    EXPECT_EQ(UserData()[0], 'a' + i);
    EXPECT_EQ(UserData()[511], 'a' + i);
  }
  EXPECT_EQ(vfs_->Close(f), 0);
  kern::VfsStat st;
  ASSERT_EQ(vfs_->Stat("/mnt/big", &st), 0);
  EXPECT_EQ(st.size, static_cast<uint64_t>(kChunks) * sizeof(chunk));
}

TEST_P(VfsTest, ErrnoSurface) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  int err = 0;
  EXPECT_EQ(vfs_->Open("/mnt/missing", 0, &err), nullptr);
  EXPECT_EQ(err, -kern::kEnoent);
  EXPECT_EQ(vfs_->Open("/nowhere/f", 0, &err), nullptr);
  EXPECT_EQ(err, -kern::kEnodev);
  ASSERT_EQ(vfs_->Mkdir("/mnt/d"), 0);
  EXPECT_EQ(vfs_->Open("/mnt/d", 0, &err), nullptr);
  EXPECT_EQ(err, -kern::kEisdir);
  EXPECT_EQ(vfs_->Mkdir("/mnt/d"), -kern::kEexist);
  EXPECT_EQ(vfs_->Unlink("/mnt/d"), -kern::kEisdir);
  const char payload[] = "x";
  ASSERT_EQ(WriteFile("/mnt/f", payload, 1), 0);
  EXPECT_EQ(vfs_->Rmdir("/mnt/f"), -kern::kEnotdir);
  kern::VfsStat st;
  EXPECT_EQ(vfs_->Stat("/mnt/f/notdir", &st), -kern::kEnotdir);
}

TEST_P(VfsTest, StatfsCountsFilesAndBytes) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  ASSERT_EQ(WriteFile("/mnt/a", "aaaa", 4), 0);
  ASSERT_EQ(WriteFile("/mnt/b", "bb", 2), 0);
  kern::VfsStatFs sfs;
  ASSERT_EQ(vfs_->StatFs("/mnt", &sfs), 0);
  EXPECT_EQ(sfs.files, 2u);
  EXPECT_EQ(sfs.bytes, 6u);
  EXPECT_STREQ(sfs.fsname, "ramfs");
}

TEST_P(VfsTest, PrepopulatedMountSeedsKeepFile) {
  // Separate kernel: the prepopulating flavour exercises d_alloc.
  Bench bench(GetParam());
  kern::Vfs* vfs = kern::GetVfs(bench.kernel.get());
  ASSERT_NE(bench.kernel->LoadModule(mods::RamfsModuleDef(/*prepopulate=*/true)), nullptr);
  ASSERT_NE(vfs->Mount("ramfs", "/seeded"), nullptr);
  kern::VfsStat st;
  EXPECT_EQ(vfs->Stat("/seeded/.keep", &st), 0);
  if (GetParam()) {
    EXPECT_EQ(bench.rt->violation_count(), 0u);
  }
}

TEST_P(VfsTest, OpenHandlesBlockUnlinkAndUnmount) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  int err = 0;
  kern::File* f = vfs_->Open("/mnt/held", kern::kOCreate, &err);
  ASSERT_NE(f, nullptr);
  // The dentry and inode are referenced by the open File: both unlink and
  // unmount refuse instead of freeing under the handle.
  EXPECT_EQ(vfs_->Unlink("/mnt/held"), -kern::kEbusy);
  EXPECT_EQ(vfs_->Unmount("/mnt"), -kern::kEbusy);
  EXPECT_EQ(vfs_->Close(f), 0);
  EXPECT_EQ(vfs_->Unlink("/mnt/held"), 0);
  EXPECT_EQ(vfs_->Unmount("/mnt"), 0);
  if (GetParam()) {
    EXPECT_EQ(bench_.rt->violation_count(), 0u);
  }
}

TEST_P(VfsTest, HugeSeekWriteFailsInsteadOfWrapping) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  int err = 0;
  kern::File* f = vfs_->Open("/mnt/sparse", kern::kOCreate, &err);
  ASSERT_NE(f, nullptr);
  // Far beyond the ramfs size cap: the write must fail cleanly (no wrap of
  // pos + n, no unbounded capacity-doubling loop).
  ASSERT_EQ(vfs_->Seek(f, 1ull << 62), 0);
  EXPECT_EQ(vfs_->Write(f, StageUser("x", 1), 1), -kern::kEnospc);
  ASSERT_EQ(vfs_->Seek(f, ~0ull), 0);
  EXPECT_EQ(vfs_->Write(f, StageUser("xy", 2), 2), -kern::kEnospc);
  // The file is still usable at sane offsets.
  ASSERT_EQ(vfs_->Seek(f, 0), 0);
  EXPECT_EQ(vfs_->Write(f, StageUser("ok", 2), 2), 2);
  EXPECT_EQ(vfs_->Close(f), 0);
}

TEST_P(VfsTest, UnmountReleasesEverything) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  ASSERT_EQ(WriteFile("/mnt/f0", "data", 4), 0);
  ASSERT_EQ(vfs_->Mkdir("/mnt/d"), 0);
  ASSERT_EQ(WriteFile("/mnt/d/f1", "more", 4), 0);
  EXPECT_EQ(vfs_->Unmount("/mnt"), 0);
  // A fresh mount at the same place starts empty.
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  kern::VfsStat st;
  EXPECT_EQ(vfs_->Stat("/mnt/f0", &st), -kern::kEnoent);
}

TEST_P(VfsTest, ZeroViolationsOnBenignWorkload) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  for (int i = 0; i < 32; ++i) {
    std::string path = "/mnt/f" + std::to_string(i);
    ASSERT_EQ(WriteFile(path.c_str(), path.data(), path.size()), 0);
    kern::VfsStat st;
    ASSERT_EQ(vfs_->Stat(path.c_str(), &st), 0);
    ASSERT_EQ(st.size, path.size());
  }
  for (int i = 0; i < 32; ++i) {
    std::string path = "/mnt/f" + std::to_string(i);
    ASSERT_EQ(vfs_->Unlink(path.c_str()), 0);
  }
  ASSERT_EQ(vfs_->Unmount("/mnt"), 0);
  if (GetParam()) {
    EXPECT_EQ(bench_.rt->violation_count(), 0u);
  }
}

TEST_P(VfsTest, SecondMissCostsZeroModuleDispatches) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  kern::VfsStat st;
  uint64_t base = vfs_->lookup_dispatches();
  EXPECT_EQ(vfs_->Stat("/mnt/nothere", &st), -kern::kEnoent);
  EXPECT_EQ(vfs_->lookup_dispatches(), base + 1);  // first miss dispatches
  uint64_t neg_hits = vfs_->dcache().negative_hits();
  EXPECT_EQ(vfs_->Stat("/mnt/nothere", &st), -kern::kEnoent);
  EXPECT_EQ(vfs_->Stat("/mnt/nothere", &st), -kern::kEnoent);
  // The repeats were answered by the cached negative dentry: zero further
  // module dispatches, two negative-cache hits.
  EXPECT_EQ(vfs_->lookup_dispatches(), base + 1);
  EXPECT_EQ(vfs_->dcache().negative_hits(), neg_hits + 2);
  if (GetParam()) {
    EXPECT_EQ(bench_.rt->violation_count(), 0u);
  }
}

TEST_P(VfsTest, CreateInvalidatesCachedNegative) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  kern::VfsStat st;
  ASSERT_EQ(vfs_->Stat("/mnt/f", &st), -kern::kEnoent);  // cache the negative
  ASSERT_EQ(WriteFile("/mnt/f", "data", 4), 0);          // displaces it
  ASSERT_EQ(vfs_->Stat("/mnt/f", &st), 0);
  EXPECT_EQ(st.size, 4u);
  // Same story for mkdir over a cached negative.
  ASSERT_EQ(vfs_->Stat("/mnt/d", &st), -kern::kEnoent);
  ASSERT_EQ(vfs_->Mkdir("/mnt/d"), 0);
  ASSERT_EQ(vfs_->Stat("/mnt/d", &st), 0);
  EXPECT_NE(st.mode & kern::kIfDir, 0u);
  // And unlinking brings the name back to (dispatching) miss behavior.
  ASSERT_EQ(vfs_->Unlink("/mnt/f"), 0);
  uint64_t base = vfs_->lookup_dispatches();
  EXPECT_EQ(vfs_->Stat("/mnt/f", &st), -kern::kEnoent);
  EXPECT_EQ(vfs_->lookup_dispatches(), base + 1);
}

TEST_P(VfsTest, DyingDirectoryRefusesNewEntriesAndWalks) {
  // Simulates the rmdir-in-flight window: once a directory is marked
  // dying, nothing may be linked into it (the rmdir's ENOTEMPTY check has
  // already run) and walkers treat it as gone.
  ASSERT_NE(mod_, nullptr);
  kern::SuperBlock* sb = vfs_->Mount("ramfs", "/mnt");
  ASSERT_NE(sb, nullptr);
  ASSERT_EQ(vfs_->Mkdir("/mnt/d"), 0);
  kern::Dentry* d = nullptr;
  for (kern::Dentry* c = sb->root->child; c != nullptr; c = c->sibling) {
    if (std::strcmp(c->name, "d") == 0) {
      d = c;
    }
  }
  ASSERT_NE(d, nullptr);
  kern::Dcache::SetDying(d, true);
  kern::VfsStat st;
  EXPECT_EQ(vfs_->Stat("/mnt/d", &st), -kern::kEnoent);
  EXPECT_EQ(vfs_->Stat("/mnt/d/x", &st), -kern::kEnoent);
  int err = 0;
  EXPECT_EQ(vfs_->Open("/mnt/d/f", kern::kOCreate, &err), nullptr);
  EXPECT_EQ(err, -kern::kEnoent);
  // The DInstantiate guard itself: a racing create that resolved the
  // directory before the dying mark must fail to link into it.
  kern::Dentry* child = vfs_->DAlloc(d, "f");
  ASSERT_NE(child, nullptr);
  kern::Inode* ino = vfs_->Iget(sb);
  ino->mode = kern::kIfReg;
  EXPECT_EQ(vfs_->DInstantiate(child, ino), -kern::kEnoent);
  vfs_->Iput(ino);
  kern::Dcache::SetDying(d, false);
  EXPECT_EQ(vfs_->Stat("/mnt/d", &st), 0);
  ASSERT_EQ(vfs_->Mkdir("/mnt/d/sub"), 0);
  EXPECT_EQ(vfs_->Rmdir("/mnt/d"), -kern::kEnotempty);
  EXPECT_EQ(vfs_->Rmdir("/mnt/d/sub"), 0);
  EXPECT_EQ(vfs_->Rmdir("/mnt/d"), 0);
}

TEST_P(VfsTest, NegativeDentryCacheIsBounded) {
  ASSERT_NE(mod_, nullptr);
  ASSERT_NE(vfs_->Mount("ramfs", "/mnt"), nullptr);
  kern::VfsStat st;
  constexpr int kProbes = 40;  // > kMaxNegativePerDir
  for (int i = 0; i < kProbes; ++i) {
    std::string path = "/mnt/m" + std::to_string(i);
    ASSERT_EQ(vfs_->Stat(path.c_str(), &st), -kern::kEnoent);
  }
  EXPECT_EQ(vfs_->SuperAt("/mnt")->root->neg_children, kern::Dcache::kMaxNegativePerDir);
  // Second pass: the first kMaxNegativePerDir misses are free, the rest
  // dispatch again (bounded cache, not unbounded growth).
  uint64_t base = vfs_->lookup_dispatches();
  for (int i = 0; i < kProbes; ++i) {
    std::string path = "/mnt/m" + std::to_string(i);
    ASSERT_EQ(vfs_->Stat(path.c_str(), &st), -kern::kEnoent);
  }
  EXPECT_EQ(vfs_->lookup_dispatches(),
            base + (kProbes - kern::Dcache::kMaxNegativePerDir));
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, VfsTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

TEST(VfsPrincipals, EachMountIsItsOwnPrincipal) {
  Bench bench(/*isolated=*/true);
  kern::Vfs* vfs = kern::GetVfs(bench.kernel.get());
  kern::Module* mod = bench.kernel->LoadModule(mods::RamfsModuleDef());
  ASSERT_NE(mod, nullptr);
  kern::SuperBlock* sba = vfs->Mount("ramfs", "/a");
  kern::SuperBlock* sbb = vfs->Mount("ramfs", "/b");
  ASSERT_NE(sba, nullptr);
  ASSERT_NE(sbb, nullptr);

  lxfi::ModuleCtx* mc = bench.rt->CtxOf(mod);
  lxfi::Principal* pa = mc->Lookup(reinterpret_cast<uintptr_t>(sba));
  lxfi::Principal* pb = mc->Lookup(reinterpret_cast<uintptr_t>(sbb));
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  EXPECT_NE(pa, pb);
  // Each principal holds WRITE over its own superblock's fillable fields
  // (s_op/s_fs_info), not the other's — and never over the kernel-managed
  // fields (type/root/next_ino) of either.
  EXPECT_TRUE(bench.rt->Owns(pa, lxfi::Capability::Write(&sba->s_op, 2 * sizeof(void*))));
  EXPECT_FALSE(bench.rt->Owns(pa, lxfi::Capability::Write(&sbb->s_op, 2 * sizeof(void*))));
  EXPECT_TRUE(bench.rt->Owns(pb, lxfi::Capability::Write(&sbb->s_op, 2 * sizeof(void*))));
  EXPECT_FALSE(bench.rt->Owns(pa, lxfi::Capability::Write(&sba->root, sizeof(void*))));
  EXPECT_FALSE(bench.rt->Owns(pa, lxfi::Capability::Write(&sba->type, sizeof(void*))));
  // Inodes alias onto the mount principal: a file created under /a is
  // owned by pa.
  int err = 0;
  kern::File* f = vfs->Open("/a/file", kern::kOCreate, &err);
  ASSERT_NE(f, nullptr);
  lxfi::Principal* pf = mc->Lookup(reinterpret_cast<uintptr_t>(f->inode));
  EXPECT_EQ(pf, pa);
  EXPECT_TRUE(bench.rt->Owns(pa, lxfi::Capability::Write(f->inode, sizeof(kern::Inode))));
  EXPECT_FALSE(bench.rt->Owns(pb, lxfi::Capability::Write(f->inode, sizeof(kern::Inode))));
  EXPECT_EQ(vfs->Close(f), 0);
  EXPECT_EQ(bench.rt->violation_count(), 0u);
}

TEST(VfsRegistration, FilesystemRegistrationCapabilityFlow) {
  Bench bench(/*isolated=*/true);
  kern::Vfs* vfs = kern::GetVfs(bench.kernel.get());
  kern::Module* mod = bench.kernel->LoadModule(mods::RamfsModuleDef());
  ASSERT_NE(mod, nullptr);
  auto st = mods::GetRamfs(*mod);
  ASSERT_NE(st, nullptr);
  lxfi::Principal* shared = bench.rt->CtxOf(mod)->shared();
  // While registered the module holds the REF ticket (and, since the fstype
  // sits in its .data section, WRITE over the struct — dispatch integrity
  // comes from the indirect-call annotation-hash check, as for proto_ops).
  EXPECT_TRUE(bench.rt->Owns(
      shared, lxfi::Capability::Ref("file_system_type", st->fstype)));
  // Unregister while mounted refuses and restores the ticket. Run under the
  // module's principal so the wrapped import's annotations execute.
  ASSERT_NE(vfs->Mount("ramfs", "/m"), nullptr);
  {
    lxfi::ScopedPrincipal as_module(bench.rt.get(), shared);
    EXPECT_EQ(st->api.unregister_filesystem(st->fstype), -kern::kEbusy);
  }
  EXPECT_TRUE(bench.rt->Owns(
      shared, lxfi::Capability::Ref("file_system_type", st->fstype)));
  ASSERT_EQ(vfs->Unmount("/m"), 0);
  EXPECT_EQ(bench.rt->violation_count(), 0u);
}

}  // namespace
