// Writer-set tracking unit tests (§4.1, §5).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/base/rng.h"
#include "src/lxfi/writer_set.h"

namespace {

using lxfi::WriterSet;

// Principals are only compared by pointer here.
lxfi::Principal* P(int i) { return reinterpret_cast<lxfi::Principal*>(0x1000 + i * 8); }

constexpr uintptr_t kBase = 0x7f0000000000ull;

TEST(WriterSet, EmptyByDefault) {
  WriterSet ws;
  EXPECT_TRUE(ws.Empty(kBase));
  EXPECT_TRUE(ws.WritersFor(kBase).empty());
}

TEST(WriterSet, AddRangeMarksAllCoveredPages) {
  WriterSet ws;
  ws.AddRange(P(1), kBase + 100, 2 * 4096);
  EXPECT_FALSE(ws.Empty(kBase + 100));
  EXPECT_FALSE(ws.Empty(kBase + 4096));
  EXPECT_FALSE(ws.Empty(kBase + 8191));
  // Same page as the range start counts (page granularity).
  EXPECT_FALSE(ws.Empty(kBase));
  // Past the last covered page: empty.
  EXPECT_TRUE(ws.Empty(kBase + 3 * 4096));
}

TEST(WriterSet, MultipleWritersAccumulate) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 64);
  ws.AddRange(P(2), kBase + 8, 64);
  const auto& writers = ws.WritersFor(kBase);
  EXPECT_EQ(writers.size(), 2u);
}

TEST(WriterSet, DuplicateAddIsIdempotent) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 64);
  ws.AddRange(P(1), kBase, 128);
  EXPECT_EQ(ws.WritersFor(kBase).size(), 1u);
}

TEST(WriterSet, ClearRangeOnlyDropsFullyContainedPages) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 3 * 4096);
  // Clearing the middle page only.
  ws.ClearRange(kBase + 4096, 4096);
  EXPECT_FALSE(ws.Empty(kBase));
  EXPECT_TRUE(ws.Empty(kBase + 4096));
  EXPECT_FALSE(ws.Empty(kBase + 2 * 4096));
}

TEST(WriterSet, PartialPageClearIsConservative) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 4096);
  // A sub-page zeroing must NOT clear the page: other written locations may
  // still hold module data (false positives are benign, §5).
  ws.ClearRange(kBase + 128, 256);
  EXPECT_FALSE(ws.Empty(kBase));
}

TEST(WriterSet, RemoveWriterScrubsEverywhere) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 4096);
  ws.AddRange(P(1), kBase + 64 * 4096, 4096);
  ws.AddRange(P(2), kBase, 64);
  ws.RemoveWriter(P(1));
  EXPECT_TRUE(ws.Empty(kBase + 64 * 4096));
  ASSERT_EQ(ws.WritersFor(kBase).size(), 1u);
  EXPECT_EQ(ws.WritersFor(kBase)[0], P(2));
}

TEST(WriterSet, TrackedPagesCount) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 4 * 4096);
  EXPECT_EQ(ws.TrackedPages(), 4u);
  ws.ClearRange(kBase, 4 * 4096);
  EXPECT_EQ(ws.TrackedPages(), 0u);
}

TEST(WriterSet, ZeroSizeOpsAreNoops) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 0);
  EXPECT_TRUE(ws.Empty(kBase));
  ws.ClearRange(kBase, 0);
}

// --- page-boundary straddling, asserted against a naive per-page reference --

TEST(WriterSetStraddle, RangeEndingExactlyOnBoundaryStopsThere) {
  WriterSet ws;
  ws.AddRange(P(1), kBase + 2048, 2048);  // ends exactly at the page boundary
  EXPECT_FALSE(ws.Empty(kBase + 2048));
  EXPECT_TRUE(ws.Empty(kBase + 4096));
}

TEST(WriterSetStraddle, OneByteStraddleMarksBothPages) {
  WriterSet ws;
  ws.AddRange(P(1), kBase + 4095, 2);  // last byte of page 0, first of page 1
  EXPECT_FALSE(ws.Empty(kBase));
  EXPECT_FALSE(ws.Empty(kBase + 4096));
  EXPECT_TRUE(ws.Empty(kBase + 2 * 4096));
}

TEST(WriterSetStraddle, ClearRangeStraddlingBoundaryKeepsPartialPages) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 4 * 4096);
  // Clear [page0 mid .. page2 mid): only page 1 is fully contained.
  ws.ClearRange(kBase + 2048, 2 * 4096);
  EXPECT_FALSE(ws.Empty(kBase));             // partial: conservative keep
  EXPECT_TRUE(ws.Empty(kBase + 4096));       // fully covered: cleared
  EXPECT_FALSE(ws.Empty(kBase + 2 * 4096));  // partial: conservative keep
  EXPECT_FALSE(ws.Empty(kBase + 3 * 4096));  // untouched
}

// Randomized straddle-heavy differential against a brute-force page map.
TEST(WriterSetStraddle, MatchesNaiveReferenceUnderChurn) {
  lxfi::Rng rng(909);
  WriterSet ws;
  // Reference: page -> set of writers, maintained with the same page-granular
  // conservative-clear semantics, via the naive per-page loop.
  std::map<uintptr_t, std::set<lxfi::Principal*>> ref;
  constexpr uintptr_t kShift = WriterSet::kPageShift;

  for (int step = 0; step < 20000; ++step) {
    uintptr_t addr = kBase + rng.Below(12) * 4096 + 4096 - 32 + rng.Below(64);
    size_t size = 1 + rng.Below(2) * 4096 + rng.Below(100);
    lxfi::Principal* writer = P(static_cast<int>(rng.Below(3)));
    switch (rng.Below(4)) {
      case 0:
      case 1: {
        ws.AddRange(writer, addr, size);
        for (uintptr_t pg = addr >> kShift; pg <= (addr + size - 1) >> kShift; ++pg) {
          ref[pg].insert(writer);
        }
        break;
      }
      case 2: {
        ws.ClearRange(addr, size);
        uintptr_t first_full = (addr + 4095) >> kShift;
        uintptr_t last_full = (addr + size) >> kShift;  // exclusive
        for (uintptr_t pg = first_full; pg < last_full; ++pg) {
          ref.erase(pg);
        }
        break;
      }
      default: {
        uintptr_t q = kBase + rng.Below(16) * 4096 + rng.Below(4096);
        auto it = ref.find(q >> kShift);
        bool expect_empty = it == ref.end() || it->second.empty();
        ASSERT_EQ(ws.Empty(q), expect_empty) << "divergence at step " << step;
        size_t expect_n = it == ref.end() ? 0 : it->second.size();
        ASSERT_EQ(ws.WritersFor(q).size(), expect_n);
        break;
      }
    }
  }
  // Full sweep, then writer removal must scrub everywhere.
  ws.RemoveWriter(P(0));
  for (auto& [pg, writers] : ref) {
    writers.erase(P(0));
    const lxfi::WriterVec& got = ws.WritersFor(pg << kShift);
    ASSERT_EQ(got.size(), writers.size()) << "page " << pg;
    for (lxfi::Principal* w : got) {
      ASSERT_TRUE(writers.count(w) != 0);
    }
  }
}

}  // namespace
