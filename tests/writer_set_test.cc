// Writer-set tracking unit tests (§4.1, §5).
#include <gtest/gtest.h>

#include "src/lxfi/writer_set.h"

namespace {

using lxfi::WriterSet;

// Principals are only compared by pointer here.
lxfi::Principal* P(int i) { return reinterpret_cast<lxfi::Principal*>(0x1000 + i * 8); }

constexpr uintptr_t kBase = 0x7f0000000000ull;

TEST(WriterSet, EmptyByDefault) {
  WriterSet ws;
  EXPECT_TRUE(ws.Empty(kBase));
  EXPECT_TRUE(ws.WritersFor(kBase).empty());
}

TEST(WriterSet, AddRangeMarksAllCoveredPages) {
  WriterSet ws;
  ws.AddRange(P(1), kBase + 100, 2 * 4096);
  EXPECT_FALSE(ws.Empty(kBase + 100));
  EXPECT_FALSE(ws.Empty(kBase + 4096));
  EXPECT_FALSE(ws.Empty(kBase + 8191));
  // Same page as the range start counts (page granularity).
  EXPECT_FALSE(ws.Empty(kBase));
  // Past the last covered page: empty.
  EXPECT_TRUE(ws.Empty(kBase + 3 * 4096));
}

TEST(WriterSet, MultipleWritersAccumulate) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 64);
  ws.AddRange(P(2), kBase + 8, 64);
  const auto& writers = ws.WritersFor(kBase);
  EXPECT_EQ(writers.size(), 2u);
}

TEST(WriterSet, DuplicateAddIsIdempotent) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 64);
  ws.AddRange(P(1), kBase, 128);
  EXPECT_EQ(ws.WritersFor(kBase).size(), 1u);
}

TEST(WriterSet, ClearRangeOnlyDropsFullyContainedPages) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 3 * 4096);
  // Clearing the middle page only.
  ws.ClearRange(kBase + 4096, 4096);
  EXPECT_FALSE(ws.Empty(kBase));
  EXPECT_TRUE(ws.Empty(kBase + 4096));
  EXPECT_FALSE(ws.Empty(kBase + 2 * 4096));
}

TEST(WriterSet, PartialPageClearIsConservative) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 4096);
  // A sub-page zeroing must NOT clear the page: other written locations may
  // still hold module data (false positives are benign, §5).
  ws.ClearRange(kBase + 128, 256);
  EXPECT_FALSE(ws.Empty(kBase));
}

TEST(WriterSet, RemoveWriterScrubsEverywhere) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 4096);
  ws.AddRange(P(1), kBase + 64 * 4096, 4096);
  ws.AddRange(P(2), kBase, 64);
  ws.RemoveWriter(P(1));
  EXPECT_TRUE(ws.Empty(kBase + 64 * 4096));
  ASSERT_EQ(ws.WritersFor(kBase).size(), 1u);
  EXPECT_EQ(ws.WritersFor(kBase)[0], P(2));
}

TEST(WriterSet, TrackedPagesCount) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 4 * 4096);
  EXPECT_EQ(ws.TrackedPages(), 4u);
  ws.ClearRange(kBase, 4 * 4096);
  EXPECT_EQ(ws.TrackedPages(), 0u);
}

TEST(WriterSet, ZeroSizeOpsAreNoops) {
  WriterSet ws;
  ws.AddRange(P(1), kBase, 0);
  EXPECT_TRUE(ws.Empty(kBase));
  ws.ClearRange(kBase, 0);
}

}  // namespace
