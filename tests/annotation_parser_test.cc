// Parser tests for the Figure 2 annotation grammar.
#include <gtest/gtest.h>

#include "src/lxfi/annotation.h"
#include "src/lxfi/annotation_parser.h"

namespace {

using lxfi::Annotation;
using lxfi::Action;
using lxfi::AnnotationSet;
using lxfi::CapKind;
using lxfi::ParseAnnotations;

std::unique_ptr<AnnotationSet> MustParse(const std::string& text,
                                         std::vector<std::string> params = {"a", "b", "c"}) {
  std::string error;
  auto set = ParseAnnotations("test_fn", params, text, &error);
  EXPECT_NE(set, nullptr) << error << " while parsing: " << text;
  return set;
}

void MustFail(const std::string& text, std::vector<std::string> params = {"a", "b", "c"}) {
  std::string error;
  auto set = ParseAnnotations("test_fn", params, text, &error);
  EXPECT_EQ(set, nullptr) << "expected parse failure for: " << text;
  EXPECT_FALSE(error.empty());
}

TEST(AnnotationParser, EmptyTextIsValidAndHashesToZero) {
  auto set = MustParse("");
  EXPECT_TRUE(set->annotations.empty());
  EXPECT_EQ(set->ahash, 0u);
}

TEST(AnnotationParser, PreCheckWriteWithSize) {
  auto set = MustParse("pre(check(write, a, 8))");
  ASSERT_EQ(set->annotations.size(), 1u);
  const Annotation& ann = set->annotations[0];
  EXPECT_EQ(ann.kind, Annotation::Kind::kPre);
  ASSERT_NE(ann.action, nullptr);
  EXPECT_EQ(ann.action->op, Action::Op::kCheck);
  EXPECT_FALSE(ann.action->caps.is_iterator);
  EXPECT_EQ(ann.action->caps.kind, CapKind::kWrite);
  ASSERT_NE(ann.action->caps.size, nullptr);
}

TEST(AnnotationParser, WriteSizeDefaultsWhenOmitted) {
  auto set = MustParse("pre(check(write, a))");
  EXPECT_EQ(set->annotations[0].action->caps.size, nullptr);
}

TEST(AnnotationParser, RefTypeWithAndWithoutStructKeyword) {
  auto set1 = MustParse("pre(check(ref(struct pci_dev), a))");
  auto set2 = MustParse("pre(check(ref(pci_dev), a))");
  EXPECT_EQ(set1->annotations[0].action->caps.ref_type_name, "pci_dev");
  EXPECT_EQ(set2->annotations[0].action->caps.ref_type_name, "pci_dev");
}

TEST(AnnotationParser, CallCapability) {
  auto set = MustParse("pre(check(call, b))");
  EXPECT_EQ(set->annotations[0].action->caps.kind, CapKind::kCall);
}

TEST(AnnotationParser, IteratorCapList) {
  auto set = MustParse("pre(transfer(skb_caps(a)))");
  const auto& caps = set->annotations[0].action->caps;
  EXPECT_TRUE(caps.is_iterator);
  EXPECT_EQ(caps.iterator_name, "skb_caps");
  ASSERT_NE(caps.iterator_arg, nullptr);
}

TEST(AnnotationParser, PostIfWithReturnComparison) {
  auto set = MustParse("post(if (return < 0) transfer(ref(struct pci_dev), a))");
  const Annotation& ann = set->annotations[0];
  EXPECT_EQ(ann.kind, Annotation::Kind::kPost);
  EXPECT_EQ(ann.action->op, Action::Op::kIf);
  ASSERT_NE(ann.action->cond, nullptr);
  ASSERT_NE(ann.action->then, nullptr);
  EXPECT_EQ(ann.action->then->op, Action::Op::kTransfer);
}

TEST(AnnotationParser, NestedIf) {
  auto set = MustParse("post(if (return != 0) if (a > 0) copy(write, a, b))");
  const Action* act = set->annotations[0].action.get();
  EXPECT_EQ(act->op, Action::Op::kIf);
  EXPECT_EQ(act->then->op, Action::Op::kIf);
  EXPECT_EQ(act->then->then->op, Action::Op::kCopy);
}

TEST(AnnotationParser, PrincipalByParameter) {
  auto set = MustParse("principal(b)");
  const Annotation& ann = set->annotations[0];
  EXPECT_EQ(ann.kind, Annotation::Kind::kPrincipal);
  EXPECT_EQ(ann.principal_target, Annotation::PrincipalTarget::kExpr);
  ASSERT_NE(ann.principal_expr, nullptr);
  EXPECT_EQ(ann.principal_expr->kind, lxfi::Expr::Kind::kArg);
  EXPECT_EQ(ann.principal_expr->arg_index, 1);
}

TEST(AnnotationParser, PrincipalGlobalAndShared) {
  auto g = MustParse("principal(global)");
  auto s = MustParse("principal(shared)");
  EXPECT_EQ(g->annotations[0].principal_target, Annotation::PrincipalTarget::kGlobal);
  EXPECT_EQ(s->annotations[0].principal_target, Annotation::PrincipalTarget::kShared);
}

TEST(AnnotationParser, MultipleAnnotationsInOneString) {
  auto set = MustParse(
      "principal(a) pre(copy(ref(struct pci_dev), a)) "
      "post(if (return < 0) transfer(ref(struct pci_dev), a))");
  EXPECT_EQ(set->annotations.size(), 3u);
  EXPECT_TRUE(set->HasPrincipal());
}

TEST(AnnotationParser, ArgNForm) {
  auto set = MustParse("pre(check(write, arg2, arg0))", {"x"});
  const auto& caps = set->annotations[0].action->caps;
  EXPECT_EQ(caps.ptr->arg_index, 2);
  EXPECT_EQ(caps.size->arg_index, 0);
}

TEST(AnnotationParser, ArithmeticAndComparisons) {
  auto set = MustParse("post(if (return == a + 2 - 1) copy(write, a, 8))");
  EXPECT_EQ(set->annotations[0].action->op, Action::Op::kIf);
}

TEST(AnnotationParser, NegativeLiterals) {
  auto set = MustParse("post(if (return == -16) transfer(write, a, 8))");
  EXPECT_EQ(set->annotations[0].action->op, Action::Op::kIf);
}

TEST(AnnotationParser, HexLiterals) {
  auto set = MustParse("post(if (return != 0x10) copy(write, a, 0x40))");
  EXPECT_NE(set, nullptr);
}

// --- rejections --------------------------------------------------------------

TEST(AnnotationParser, RejectsReturnInPre) { MustFail("pre(if (return < 0) check(write, a, 8))"); }

TEST(AnnotationParser, RejectsUnknownIdentifier) { MustFail("pre(check(write, nosuch, 8))"); }

TEST(AnnotationParser, RejectsUnknownAnnotationKeyword) { MustFail("before(check(write, a, 8))"); }

TEST(AnnotationParser, RejectsUnknownAction) { MustFail("pre(verify(write, a, 8))"); }

TEST(AnnotationParser, RejectsMissingParens) {
  MustFail("pre check(write, a, 8)");
  MustFail("pre(check(write, a, 8)");
}

TEST(AnnotationParser, RejectsDanglingTokens) { MustFail("pre(check(write, a, 8)) trailing"); }

// --- hashing -----------------------------------------------------------------

TEST(AnnotationHash, WhitespaceInsensitive) {
  EXPECT_EQ(lxfi::AnnotationHash("pre(check(write, a, 8))"),
            lxfi::AnnotationHash("pre( check( write,a,8 ) )"));
}

TEST(AnnotationHash, DistinguishesDifferentContracts) {
  EXPECT_NE(lxfi::AnnotationHash("pre(check(write, a, 8))"),
            lxfi::AnnotationHash("pre(check(write, a, 16))"));
  EXPECT_NE(lxfi::AnnotationHash("pre(check(write, a, 8))"),
            lxfi::AnnotationHash("pre(copy(write, a, 8))"));
}

TEST(AnnotationHash, EmptyIsZero) { EXPECT_EQ(lxfi::AnnotationHash("   "), 0u); }

// --- parameterized sweep over the valid grammar -------------------------------

class ValidAnnotationSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ValidAnnotationSweep, ParsesAndHashesStably) {
  std::string error;
  auto set = ParseAnnotations("f", {"skb", "dev", "len"}, GetParam(), &error);
  ASSERT_NE(set, nullptr) << error;
  auto set2 = ParseAnnotations("f", {"skb", "dev", "len"}, GetParam(), &error);
  ASSERT_NE(set2, nullptr);
  EXPECT_EQ(set->ahash, set2->ahash);
  EXPECT_EQ(set->annotations.size(), set2->annotations.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, ValidAnnotationSweep,
    ::testing::Values("pre(check(write, skb, 8))", "pre(check(write, skb, len))",
                      "pre(check(call, dev))", "pre(check(ref(struct net_device), dev))",
                      "pre(copy(write, skb, 64))", "pre(transfer(skb_caps(skb)))",
                      "post(copy(write, skb, len))", "post(transfer(write, skb, len))",
                      "post(if (return != 0) transfer(write, skb, len))",
                      "post(if (return == 16) transfer(skb_caps(skb)))",
                      "post(if (return < 0) transfer(ref(struct pci_dev), dev))",
                      "principal(dev)", "principal(global)", "principal(shared)",
                      "principal(dev) pre(transfer(skb_caps(skb))) "
                      "post(if (return == 16) transfer(skb_caps(skb)))"));

}  // namespace
