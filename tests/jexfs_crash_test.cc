// Crash-consistency sweep for jexfs: run an enforced metadata+data workload
// with the block layer's sector-granular write log attached, then cut the
// power at EVERY write boundary — rebuild the disk image from the base image
// plus a log prefix, run journal replay, and require the fsck invariants to
// hold at each cut. On top of the structural sweep, two pointwise claims:
// fsync is durable (a synced file survives every later cut with its exact
// content) and rename is atomic (after the journal committed the move,
// every cut sees exactly one of the two names, never both, never neither).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/block/block.h"
#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/kernel/uaccess.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/runtime.h"
#include "src/modules/jexfs/jexfs.h"
#include "src/modules/jexfs/jexfs_format.h"

namespace {

constexpr uint64_t kDiskBlocks = 1024;
constexpr uintptr_t kUbuf = 0x1000;

// --- host-side image inspection (on replayed images) -------------------------

mods::JexDiskSuper SuperOf(const uint8_t* img) {
  mods::JexDiskSuper sup;
  std::memcpy(&sup, mods::JexBlockPtr(img, 0), sizeof(sup));
  return sup;
}

mods::JexDiskInode InodeAt(const uint8_t* img, const mods::JexDiskSuper& sup, uint32_t idx) {
  mods::JexDiskInode di;
  const uint8_t* blk = mods::JexBlockPtr(img, sup.itable_start + idx / mods::kJexInodesPerBlock);
  std::memcpy(&di, blk + (idx % mods::kJexInodesPerBlock) * sizeof(di), sizeof(di));
  return di;
}

// Finds `name` in the directory inode `dir`; returns the inode-table index
// or kJexNoInode.
uint32_t DirFind(const uint8_t* img, const mods::JexDiskSuper& sup,
                 const mods::JexDiskInode& dir, const char* name) {
  for (const mods::JexExtent& e : dir.ext) {
    for (uint64_t b = e.start; b < e.start + e.len; ++b) {
      const uint8_t* blk = mods::JexBlockPtr(img, b);
      for (uint32_t i = 0; i < mods::kJexDirEntsPerBlock; ++i) {
        mods::JexDirEnt ent;
        std::memcpy(&ent, blk + i * sizeof(ent), sizeof(ent));
        if (ent.ino != mods::kJexNoInode && std::strncmp(ent.name, name, sizeof(ent.name)) == 0) {
          return ent.ino;
        }
      }
    }
  }
  return mods::kJexNoInode;
}

// Resolves a one- or two-component path from the root directory.
uint32_t PathFind(const uint8_t* img, const mods::JexDiskSuper& sup, const char* a,
                  const char* b = nullptr) {
  uint32_t idx = DirFind(img, sup, InodeAt(img, sup, 0), a);
  if (idx == mods::kJexNoInode || b == nullptr) {
    return idx;
  }
  return DirFind(img, sup, InodeAt(img, sup, idx), b);
}

std::string FileContent(const uint8_t* img, const mods::JexDiskSuper& sup, uint32_t idx) {
  mods::JexDiskInode di = InodeAt(img, sup, idx);
  std::string out;
  for (const mods::JexExtent& e : di.ext) {
    for (uint64_t b = e.start; b < e.start + e.len && out.size() < di.size; ++b) {
      size_t take = std::min<size_t>(mods::kJexBlockSize, di.size - out.size());
      out.append(reinterpret_cast<const char*>(mods::JexBlockPtr(img, b)), take);
    }
  }
  return out;
}

std::string Pattern(size_t n, char base) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>(base + static_cast<char>(i % 29));
  }
  return s;
}

// --- the workload rig --------------------------------------------------------

struct CrashRig {
  CrashRig() {
    kernel = std::make_unique<kern::Kernel>(256ull << 20);
    lxfi::RuntimeOptions options;
    options.partitioned_heaps = true;
    rt = std::make_unique<lxfi::Runtime>(kernel.get(), options);
    lxfi::InstallKernelApi(kernel.get(), rt.get());
    block = kern::GetBlockLayer(kernel.get());
    dev = block->CreateRamDisk("crashdisk0", kDiskBlocks);
    base.resize(kDiskBlocks * mods::kJexBlockSize);
    EXPECT_TRUE(mods::JexMkfs(base.data(), kDiskBlocks));
    std::memcpy(dev->backing, base.data(), base.size());
    block->SetWriteLog(dev, &log);
    EXPECT_NE(kernel->LoadModule(mods::JexfsModuleDef("jexfs", "crashdisk0")), nullptr);
    vfs = kern::GetVfs(kernel.get());
    sb = vfs->Mount("jexfs", "/mnt");
  }

  void WriteFile(const char* path, const std::string& data) {
    int err = 0;
    kern::File* f = vfs->Open(path, kern::kOCreate, &err);
    ASSERT_NE(f, nullptr) << path << " err=" << err;
    std::memcpy(kernel->user().UserPtr(kUbuf), data.data(), data.size());
    ASSERT_EQ(vfs->Write(f, kUbuf, data.size()), static_cast<int64_t>(data.size()));
    ASSERT_EQ(vfs->Close(f), 0);
  }

  void FsyncFile(const char* path) {
    int err = 0;
    kern::File* f = vfs->Open(path, 0, &err);
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(vfs->Fsync(f), 0);
    ASSERT_EQ(vfs->Close(f), 0);
  }

  // The disk image after cutting power at write boundary k.
  std::vector<uint8_t> ImageAtCut(size_t k) const {
    std::vector<uint8_t> img = base;
    for (size_t i = 0; i < k; ++i) {
      std::memcpy(img.data() + log[i].sector * kern::kSectorSize, log[i].data.data(),
                  log[i].data.size());
    }
    return img;
  }

  std::unique_ptr<kern::Kernel> kernel;
  std::unique_ptr<lxfi::Runtime> rt;
  kern::BlockLayer* block = nullptr;
  kern::BlockDevice* dev = nullptr;
  kern::Vfs* vfs = nullptr;
  kern::SuperBlock* sb = nullptr;
  std::vector<uint8_t> base;
  std::vector<kern::BlockWrite> log;
};

TEST(JexfsCrash, SweepEveryWriteBoundary) {
  CrashRig rig;
  ASSERT_NE(rig.sb, nullptr);

  const std::string a_data = Pattern(1500, 'a');
  const std::string b_data = Pattern(300, 'b');
  const std::string c_data = Pattern(2000, 'c');
  const std::string c_tail = Pattern(700, 'z');

  // Workload: creates, multi-block writes, a directory, fsyncs (journal
  // commit + checkpoint: both sides of the epoch bump land in the log),
  // a rename after a sync, an unlink, and the unmount checkpoint.
  rig.WriteFile("/mnt/a.txt", a_data);
  ASSERT_EQ(rig.vfs->Mkdir("/mnt/d"), 0);
  rig.WriteFile("/mnt/d/b", b_data);
  rig.FsyncFile("/mnt/a.txt");
  const size_t a_synced = rig.log.size();  // a.txt durable from here on

  ASSERT_EQ(rig.vfs->Rename("/mnt/a.txt", "/mnt/d/a2"), 0);
  rig.WriteFile("/mnt/c", c_data);
  ASSERT_EQ(rig.vfs->Unlink("/mnt/d/b"), 0);
  rig.FsyncFile("/mnt/c");
  const size_t c_synced = rig.log.size();  // c durable from here on

  {
    int err = 0;
    kern::File* f = rig.vfs->Open("/mnt/c", 0, &err);
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(rig.vfs->Seek(f, c_data.size()), 0);
    std::memcpy(rig.kernel->user().UserPtr(kUbuf), c_tail.data(), c_tail.size());
    ASSERT_EQ(rig.vfs->Write(f, kUbuf, c_tail.size()), static_cast<int64_t>(c_tail.size()));
    ASSERT_EQ(rig.vfs->Close(f), 0);
  }
  ASSERT_EQ(rig.vfs->Unmount("/mnt"), 0);  // KillSb checkpoints
  EXPECT_EQ(rig.rt->violation_count(), 0u);
  ASSERT_GT(rig.log.size(), 50u) << "the workload must produce a real write history";

  for (size_t k = 0; k <= rig.log.size(); ++k) {
    std::vector<uint8_t> img = rig.ImageAtCut(k);
    int applied = mods::JexReplay(img.data(), kDiskBlocks);
    ASSERT_GE(applied, 0) << "replay rejected the image at cut " << k;
    std::string why;
    ASSERT_TRUE(mods::JexFsck(img.data(), kDiskBlocks, &why))
        << "fsck failed at cut " << k << " of " << rig.log.size() << ": " << why;

    mods::JexDiskSuper sup = SuperOf(img.data());
    if (k >= a_synced) {
      // Durability + rename atomicity: the synced file exists under exactly
      // one of its two names, with its exact synced content.
      uint32_t at_old = PathFind(img.data(), sup, "a.txt");
      uint32_t at_new = PathFind(img.data(), sup, "d", "a2");
      ASSERT_TRUE((at_old == mods::kJexNoInode) != (at_new == mods::kJexNoInode))
          << "cut " << k << ": rename must expose exactly one name (old="
          << at_old << " new=" << at_new << ")";
      uint32_t idx = at_old != mods::kJexNoInode ? at_old : at_new;
      ASSERT_EQ(FileContent(img.data(), sup, idx), a_data) << "cut " << k;
    }
    if (k >= c_synced) {
      uint32_t c_idx = PathFind(img.data(), sup, "c");
      ASSERT_NE(c_idx, mods::kJexNoInode) << "cut " << k << ": synced file lost";
      std::string got = FileContent(img.data(), sup, c_idx);
      // The post-sync append may or may not have reached the disk; the
      // synced prefix must be intact either way.
      ASSERT_GE(got.size(), c_data.size()) << "cut " << k;
      ASSERT_EQ(got.substr(0, c_data.size()), c_data) << "cut " << k;
      if (got.size() > c_data.size()) {
        ASSERT_EQ(got.substr(c_data.size()), c_tail.substr(0, got.size() - c_data.size()))
            << "cut " << k;
      }
    }
  }
}

// Remount spot checks: images cut at interesting boundaries must mount in a
// fresh kernel through the module's own replay path and serve reads.
TEST(JexfsCrash, CutImagesRemountThroughTheModule) {
  CrashRig rig;
  ASSERT_NE(rig.sb, nullptr);
  const std::string data = Pattern(1800, 'm');
  rig.WriteFile("/mnt/survivor", data);
  rig.FsyncFile("/mnt/survivor");
  const size_t synced = rig.log.size();
  rig.WriteFile("/mnt/after", Pattern(400, 'n'));
  ASSERT_EQ(rig.vfs->Unmount("/mnt"), 0);

  const size_t cuts[] = {synced, (synced + rig.log.size()) / 2, rig.log.size()};
  for (size_t k : cuts) {
    std::vector<uint8_t> img = rig.ImageAtCut(k);
    auto kernel = std::make_unique<kern::Kernel>(256ull << 20);
    lxfi::InstallKernelApi(kernel.get(), nullptr);
    kern::BlockDevice* dev =
        kern::GetBlockLayer(kernel.get())->CreateRamDisk("crashdisk0", kDiskBlocks);
    std::memcpy(dev->backing, img.data(), img.size());
    ASSERT_NE(kernel->LoadModule(mods::JexfsModuleDef("jexfs", "crashdisk0")), nullptr);
    kern::Vfs* vfs = kern::GetVfs(kernel.get());
    ASSERT_NE(vfs->Mount("jexfs", "/mnt"), nullptr) << "cut " << k;
    int err = 0;
    kern::File* f = vfs->Open("/mnt/survivor", 0, &err);
    ASSERT_NE(f, nullptr) << "cut " << k << " err=" << err;
    std::string out;
    char chunk[256];
    int64_t got;
    while ((got = vfs->Read(f, kUbuf, sizeof(chunk))) > 0) {
      out.append(reinterpret_cast<char*>(kernel->user().UserPtr(kUbuf)),
                 static_cast<size_t>(got));
    }
    vfs->Close(f);
    EXPECT_EQ(out, data) << "cut " << k;
    ASSERT_EQ(vfs->Unmount("/mnt"), 0);
  }
}

}  // namespace
