// Failure injection: the error paths of annotated interfaces must keep the
// capability state consistent — probe failures hand the device back
// (Figure 4's post(if (return < 0) transfer...)), busy transmits hand the
// packet back, allocation failure grants nothing.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/net/netdevice.h"
#include "src/kernel/net/skbuff.h"
#include "src/kernel/net/socket.h"
#include "src/kernel/pci/pci.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/mem.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"
#include "src/modules/e1000/e1000.h"
#include "tests/testbench.h"

namespace {

using lxfi::Capability;
using lxfitest::Bench;

// A driver whose probe can be told to fail after it received its REF.
struct FlakyState {
  kern::Module* m = nullptr;
  bool fail_probe = false;
  kern::PciDev* seen = nullptr;
  std::function<int(kern::PciDriver*)> pci_register_driver;
};

kern::ModuleDef FlakyDriverDef(std::shared_ptr<FlakyState> st) {
  kern::ModuleDef def;
  def.name = "flaky";
  def.data_size = sizeof(kern::PciDriver);
  def.imports = {"pci_register_driver", "pci_unregister_driver", "printk"};
  def.functions = {
      lxfi::DeclareFunction<int, kern::PciDev*>("flaky_probe", "pci_driver::probe",
                                                [st](kern::PciDev* pdev) {
                                                  st->seen = pdev;
                                                  return st->fail_probe ? -kern::kEnodev : 0;
                                                }),
      lxfi::DeclareFunction<void, kern::PciDev*>("flaky_remove", "pci_driver::remove",
                                                 [](kern::PciDev*) {}),
  };
  def.init = [st](kern::Module& m) -> int {
    st->m = &m;
    st->pci_register_driver = lxfi::GetImport<int, kern::PciDriver*>(m, "pci_register_driver");
    auto* drv = static_cast<kern::PciDriver*>(m.data());
    lxfi::Store(m, &drv->vendor, uint16_t{0xaaaa});
    lxfi::Store(m, &drv->device, uint16_t{0xbbbb});
    lxfi::Store(m, &drv->probe, m.FuncAddr("flaky_probe"));
    lxfi::Store(m, &drv->remove, m.FuncAddr("flaky_remove"));
    lxfi::Store(m, &drv->module, &m);
    return st->pci_register_driver(drv);
  };
  return def;
}

TEST(FailureInjection, FailedProbeHandsTheDeviceBack) {
  Bench bench(/*isolated=*/true);
  kern::PciDev* dev = kern::GetPciBus(bench.kernel.get())->AddDevice(0xaaaa, 0xbbbb, 0, 9);
  auto st = std::make_shared<FlakyState>();
  st->fail_probe = true;
  kern::Module* m = bench.kernel->LoadModule(FlakyDriverDef(st));
  ASSERT_NE(m, nullptr) << "module load survives a failed probe";
  EXPECT_EQ(st->seen, dev);
  EXPECT_EQ(dev->driver, nullptr);
  // The probe's pre(copy(ref...)) granted a REF; the post(if (return < 0)
  // transfer(...)) must have revoked it from the instance principal.
  lxfi::Principal* inst =
      bench.rt->CtxOf(m)->Lookup(reinterpret_cast<uintptr_t>(dev));
  ASSERT_NE(inst, nullptr);
  EXPECT_FALSE(bench.rt->Owns(inst, Capability::Ref("pci_dev", dev)))
      << "the REF must travel back with the error return";
}

TEST(FailureInjection, SuccessfulProbeKeepsTheRef) {
  Bench bench(/*isolated=*/true);
  kern::PciDev* dev = kern::GetPciBus(bench.kernel.get())->AddDevice(0xaaaa, 0xbbbb, 0, 9);
  auto st = std::make_shared<FlakyState>();
  kern::Module* m = bench.kernel->LoadModule(FlakyDriverDef(st));
  ASSERT_NE(m, nullptr);
  lxfi::Principal* inst =
      bench.rt->CtxOf(m)->Lookup(reinterpret_cast<uintptr_t>(dev));
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(bench.rt->Owns(inst, Capability::Ref("pci_dev", dev)));
}

TEST(FailureInjection, BusyXmitReturnsSkbCapsWithThePacket) {
  Bench bench(/*isolated=*/true);
  kern::NicHw* hw = mods::PlugInE1000Device(bench.kernel.get());
  kern::Module* m = bench.kernel->LoadModule(mods::E1000ModuleDef());
  ASSERT_NE(m, nullptr);
  kern::NetStack* stack = kern::GetNetStack(bench.kernel.get());
  kern::NetDevice* dev = stack->DevByIndex(1);

  // Fill the ring so the next xmit reports busy.
  for (uint32_t i = 0; i < mods::kE1000TxRing - 1; ++i) {
    kern::SkBuff* skb = kern::AllocSkb(bench.kernel.get(), 60);
    kern::SkbPut(skb, 60);
    ASSERT_EQ(stack->DevQueueXmit(dev, skb), kern::kNetdevTxOk);
  }
  kern::SkBuff* stuck = kern::AllocSkb(bench.kernel.get(), 60);
  kern::SkbPut(stuck, 60);
  ASSERT_EQ(stack->DevQueueXmit(dev, stuck), kern::kNetdevTxBusy);
  // The pre(transfer(skb_caps)) gave the module the packet, the
  // post(if (return == 16) transfer(skb_caps)) took it back: no module
  // principal may still write it.
  lxfi::ModuleCtx* ctx = bench.rt->CtxOf(m);
  for (const auto& inst : ctx->instances()) {
    EXPECT_FALSE(inst->caps().CheckWrite(reinterpret_cast<uintptr_t>(stuck), 8));
  }
  EXPECT_FALSE(ctx->shared()->caps().CheckWrite(reinterpret_cast<uintptr_t>(stuck), 8));
  // The kernel (trusted) can free it safely.
  kern::FreeSkb(bench.kernel.get(), stuck);
  hw->ProcessTx();
  EXPECT_EQ(bench.rt->violation_count(), 0u);
}

TEST(FailureInjection, KmallocExhaustionGrantsNothing) {
  // A tiny kernel: the module's allocation fails and no WRITE appears.
  kern::Kernel kernel(1 << 20);
  lxfi::Runtime rt(&kernel);
  lxfi::InstallKernelApi(&kernel, &rt);
  struct St {
    std::function<void*(size_t)> kmalloc;
  };
  auto st = std::make_shared<St>();
  kern::ModuleDef def;
  def.name = "hungry";
  def.imports = {"kmalloc", "printk"};
  def.init = [st](kern::Module& m) -> int {
    st->kmalloc = lxfi::GetImport<void*, size_t>(m, "kmalloc");
    return 0;
  };
  kern::Module* m = kernel.LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  lxfi::Principal* shared = rt.CtxOf(m)->shared();
  size_t caps_before = shared->caps().write_count();
  {
    lxfi::ScopedPrincipal as_module(&rt, shared);
    void* p = nullptr;
    for (int i = 0; i < 64 && (p = st->kmalloc(1 << 16)) != nullptr; ++i) {
    }
    EXPECT_EQ(p, nullptr) << "the arena was supposed to run out";
  }
  // The failing call's post(if (return != 0) ...) must not fire: granted
  // WRITE count grew only for the successful allocations.
  size_t caps_after = shared->caps().write_count();
  EXPECT_GT(caps_after, caps_before);
  EXPECT_FALSE(shared->caps().CheckWrite(0, 0) && false);  // sanity no-op
  // Null must never be a writable range.
  EXPECT_FALSE(rt.Owns(shared, Capability::Write(uintptr_t{1 << 21}, 8)));
}

TEST(FailureInjection, SocketCreateFailureUnwinds) {
  Bench bench(/*isolated=*/true);
  // A protocol whose create always fails.
  ASSERT_TRUE(bench.rt->annotations().Find("net_proto_family::create") != nullptr);
  kern::ModuleDef def;
  def.name = "refuser";
  def.data_size = sizeof(kern::NetProtoFamily);
  def.imports = {"sock_register", "printk"};
  def.functions = {lxfi::DeclareFunction<int, kern::Socket*>(
      "refuse_create", "net_proto_family::create",
      [](kern::Socket*) { return -kern::kEnomem; })};
  def.init = [](kern::Module& m) -> int {
    auto* fam = static_cast<kern::NetProtoFamily*>(m.data());
    lxfi::Store(m, &fam->family, 77);
    lxfi::Store(m, &fam->create, m.FuncAddr("refuse_create"));
    return lxfi::GetImport<int, kern::NetProtoFamily*>(m, "sock_register")(fam);
  };
  ASSERT_NE(bench.kernel->LoadModule(std::move(def)), nullptr);
  kern::SocketLayer* sl = kern::GetSocketLayer(bench.kernel.get());
  EXPECT_EQ(sl->SysSocket(77, 0), nullptr);
  EXPECT_EQ(sl->open_sockets(), 0u);
  EXPECT_EQ(bench.rt->violation_count(), 0u);
}

TEST(FailureInjection, UnknownFamilyAndDoubleRegister) {
  Bench bench(/*isolated=*/false);
  kern::SocketLayer* sl = kern::GetSocketLayer(bench.kernel.get());
  EXPECT_EQ(sl->SysSocket(123, 0), nullptr);
  kern::NetProtoFamily fam_a{55, 0};
  kern::NetProtoFamily fam_b{55, 0};
  EXPECT_EQ(sl->RegisterFamily(&fam_a), 0);
  EXPECT_NE(sl->RegisterFamily(&fam_b), 0) << "family numbers are exclusive";
  sl->UnregisterFamily(55);
  EXPECT_EQ(sl->RegisterFamily(&fam_b), 0);
}

}  // namespace
