// Failure injection: the error paths of annotated interfaces must keep the
// capability state consistent — probe failures hand the device back
// (Figure 4's post(if (return < 0) transfer...)), busy transmits hand the
// packet back, allocation failure grants nothing.
#include <gtest/gtest.h>

#include "src/kernel/block/block.h"
#include "src/kernel/fs/pagecache.h"
#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/kernel/net/netdevice.h"
#include "src/kernel/net/skbuff.h"
#include "src/kernel/net/socket.h"
#include "src/kernel/pci/pci.h"
#include "src/lxfi/containment.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/mem.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/violation.h"
#include "src/lxfi/wrap.h"
#include "src/modules/e1000/e1000.h"
#include "src/modules/fsfilter/fsfilter.h"
#include "src/modules/ramfs/ramfs.h"
#include "tests/testbench.h"

namespace {

using lxfi::Capability;
using lxfitest::Bench;

// A driver whose probe can be told to fail after it received its REF.
struct FlakyState {
  kern::Module* m = nullptr;
  bool fail_probe = false;
  kern::PciDev* seen = nullptr;
  std::function<int(kern::PciDriver*)> pci_register_driver;
};

kern::ModuleDef FlakyDriverDef(std::shared_ptr<FlakyState> st) {
  kern::ModuleDef def;
  def.name = "flaky";
  def.data_size = sizeof(kern::PciDriver);
  def.imports = {"pci_register_driver", "pci_unregister_driver", "printk"};
  def.functions = {
      lxfi::DeclareFunction<int, kern::PciDev*>("flaky_probe", "pci_driver::probe",
                                                [st](kern::PciDev* pdev) {
                                                  st->seen = pdev;
                                                  return st->fail_probe ? -kern::kEnodev : 0;
                                                }),
      lxfi::DeclareFunction<void, kern::PciDev*>("flaky_remove", "pci_driver::remove",
                                                 [](kern::PciDev*) {}),
  };
  def.init = [st](kern::Module& m) -> int {
    st->m = &m;
    st->pci_register_driver = lxfi::GetImport<int, kern::PciDriver*>(m, "pci_register_driver");
    auto* drv = static_cast<kern::PciDriver*>(m.data());
    lxfi::Store(m, &drv->vendor, uint16_t{0xaaaa});
    lxfi::Store(m, &drv->device, uint16_t{0xbbbb});
    lxfi::Store(m, &drv->probe, m.FuncAddr("flaky_probe"));
    lxfi::Store(m, &drv->remove, m.FuncAddr("flaky_remove"));
    lxfi::Store(m, &drv->module, &m);
    return st->pci_register_driver(drv);
  };
  return def;
}

TEST(FailureInjection, FailedProbeHandsTheDeviceBack) {
  Bench bench(/*isolated=*/true);
  kern::PciDev* dev = kern::GetPciBus(bench.kernel.get())->AddDevice(0xaaaa, 0xbbbb, 0, 9);
  auto st = std::make_shared<FlakyState>();
  st->fail_probe = true;
  kern::Module* m = bench.kernel->LoadModule(FlakyDriverDef(st));
  ASSERT_NE(m, nullptr) << "module load survives a failed probe";
  EXPECT_EQ(st->seen, dev);
  EXPECT_EQ(dev->driver, nullptr);
  // The probe's pre(copy(ref...)) granted a REF; the post(if (return < 0)
  // transfer(...)) must have revoked it from the instance principal.
  lxfi::Principal* inst =
      bench.rt->CtxOf(m)->Lookup(reinterpret_cast<uintptr_t>(dev));
  ASSERT_NE(inst, nullptr);
  EXPECT_FALSE(bench.rt->Owns(inst, Capability::Ref("pci_dev", dev)))
      << "the REF must travel back with the error return";
}

TEST(FailureInjection, SuccessfulProbeKeepsTheRef) {
  Bench bench(/*isolated=*/true);
  kern::PciDev* dev = kern::GetPciBus(bench.kernel.get())->AddDevice(0xaaaa, 0xbbbb, 0, 9);
  auto st = std::make_shared<FlakyState>();
  kern::Module* m = bench.kernel->LoadModule(FlakyDriverDef(st));
  ASSERT_NE(m, nullptr);
  lxfi::Principal* inst =
      bench.rt->CtxOf(m)->Lookup(reinterpret_cast<uintptr_t>(dev));
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(bench.rt->Owns(inst, Capability::Ref("pci_dev", dev)));
}

TEST(FailureInjection, BusyXmitReturnsSkbCapsWithThePacket) {
  Bench bench(/*isolated=*/true);
  kern::NicHw* hw = mods::PlugInE1000Device(bench.kernel.get());
  kern::Module* m = bench.kernel->LoadModule(mods::E1000ModuleDef());
  ASSERT_NE(m, nullptr);
  kern::NetStack* stack = kern::GetNetStack(bench.kernel.get());
  kern::NetDevice* dev = stack->DevByIndex(1);

  // Fill the ring so the next xmit reports busy.
  for (uint32_t i = 0; i < mods::kE1000TxRing - 1; ++i) {
    kern::SkBuff* skb = kern::AllocSkb(bench.kernel.get(), 60);
    kern::SkbPut(skb, 60);
    ASSERT_EQ(stack->DevQueueXmit(dev, skb), kern::kNetdevTxOk);
  }
  kern::SkBuff* stuck = kern::AllocSkb(bench.kernel.get(), 60);
  kern::SkbPut(stuck, 60);
  ASSERT_EQ(stack->DevQueueXmit(dev, stuck), kern::kNetdevTxBusy);
  // The pre(transfer(skb_caps)) gave the module the packet, the
  // post(if (return == 16) transfer(skb_caps)) took it back: no module
  // principal may still write it.
  lxfi::ModuleCtx* ctx = bench.rt->CtxOf(m);
  for (const auto& inst : ctx->instances()) {
    EXPECT_FALSE(inst->caps().CheckWrite(reinterpret_cast<uintptr_t>(stuck), 8));
  }
  EXPECT_FALSE(ctx->shared()->caps().CheckWrite(reinterpret_cast<uintptr_t>(stuck), 8));
  // The kernel (trusted) can free it safely.
  kern::FreeSkb(bench.kernel.get(), stuck);
  hw->ProcessTx();
  EXPECT_EQ(bench.rt->violation_count(), 0u);
}

TEST(FailureInjection, KmallocExhaustionGrantsNothing) {
  // A tiny kernel: the module's allocation fails and no WRITE appears.
  kern::Kernel kernel(1 << 20);
  lxfi::Runtime rt(&kernel);
  lxfi::InstallKernelApi(&kernel, &rt);
  struct St {
    std::function<void*(size_t)> kmalloc;
  };
  auto st = std::make_shared<St>();
  kern::ModuleDef def;
  def.name = "hungry";
  def.imports = {"kmalloc", "printk"};
  def.init = [st](kern::Module& m) -> int {
    st->kmalloc = lxfi::GetImport<void*, size_t>(m, "kmalloc");
    return 0;
  };
  kern::Module* m = kernel.LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  lxfi::Principal* shared = rt.CtxOf(m)->shared();
  size_t caps_before = shared->caps().write_count();
  {
    lxfi::ScopedPrincipal as_module(&rt, shared);
    void* p = nullptr;
    for (int i = 0; i < 64 && (p = st->kmalloc(1 << 16)) != nullptr; ++i) {
    }
    EXPECT_EQ(p, nullptr) << "the arena was supposed to run out";
  }
  // The failing call's post(if (return != 0) ...) must not fire: granted
  // WRITE count grew only for the successful allocations.
  size_t caps_after = shared->caps().write_count();
  EXPECT_GT(caps_after, caps_before);
  EXPECT_FALSE(shared->caps().CheckWrite(0, 0) && false);  // sanity no-op
  // Null must never be a writable range.
  EXPECT_FALSE(rt.Owns(shared, Capability::Write(uintptr_t{1 << 21}, 8)));
}

TEST(FailureInjection, SocketCreateFailureUnwinds) {
  Bench bench(/*isolated=*/true);
  // A protocol whose create always fails.
  ASSERT_TRUE(bench.rt->annotations().Find("net_proto_family::create") != nullptr);
  kern::ModuleDef def;
  def.name = "refuser";
  def.data_size = sizeof(kern::NetProtoFamily);
  def.imports = {"sock_register", "printk"};
  def.functions = {lxfi::DeclareFunction<int, kern::Socket*>(
      "refuse_create", "net_proto_family::create",
      [](kern::Socket*) { return -kern::kEnomem; })};
  def.init = [](kern::Module& m) -> int {
    auto* fam = static_cast<kern::NetProtoFamily*>(m.data());
    lxfi::Store(m, &fam->family, 77);
    lxfi::Store(m, &fam->create, m.FuncAddr("refuse_create"));
    return lxfi::GetImport<int, kern::NetProtoFamily*>(m, "sock_register")(fam);
  };
  ASSERT_NE(bench.kernel->LoadModule(std::move(def)), nullptr);
  kern::SocketLayer* sl = kern::GetSocketLayer(bench.kernel.get());
  EXPECT_EQ(sl->SysSocket(77, 0), nullptr);
  EXPECT_EQ(sl->open_sockets(), 0u);
  EXPECT_EQ(bench.rt->violation_count(), 0u);
}

lxfi::RuntimeOptions QuarantineOptions() {
  lxfi::RuntimeOptions options;
  options.policy = lxfi::ViolationPolicy::kQuarantine;
  options.partitioned_heaps = true;
  return options;
}

// A filesystem whose mount hook fails after register_filesystem succeeded:
// the registration must survive, kill_sb must NOT run (the kernel only calls
// it after a successful mount), and nothing leaks into the mount table.
TEST(FailureInjection, MountFailureAfterRegisterFilesystem) {
  Bench bench(/*isolated=*/true);
  kern::Vfs* vfs = kern::GetVfs(bench.kernel.get());
  struct FailFsState {
    int mount_calls = 0;
    int kill_calls = 0;
    std::function<int(kern::FileSystemType*)> register_filesystem;
  };
  auto st = std::make_shared<FailFsState>();
  kern::ModuleDef def;
  def.name = "failfs";
  def.data_size = sizeof(kern::FileSystemType);
  def.imports = {"register_filesystem", "unregister_filesystem", "printk"};
  def.functions = {
      lxfi::DeclareFunction<int, kern::FileSystemType*, kern::SuperBlock*, kern::Dentry*>(
          "failfs_mount", "file_system_type::mount",
          [st](kern::FileSystemType*, kern::SuperBlock*, kern::Dentry*) {
            ++st->mount_calls;
            return -kern::kEnomem;
          }),
      lxfi::DeclareFunction<void, kern::FileSystemType*, kern::SuperBlock*>(
          "failfs_kill_sb", "file_system_type::kill_sb",
          [st](kern::FileSystemType*, kern::SuperBlock*) { ++st->kill_calls; }),
  };
  def.init = [st](kern::Module& m) -> int {
    st->register_filesystem = lxfi::GetImport<int, kern::FileSystemType*>(m, "register_filesystem");
    auto* fstype = static_cast<kern::FileSystemType*>(m.data());
    lxfi::Store(m, &fstype->name, static_cast<const char*>("failfs"));
    lxfi::Store(m, &fstype->mount, m.FuncAddr("failfs_mount"));
    lxfi::Store(m, &fstype->kill_sb, m.FuncAddr("failfs_kill_sb"));
    lxfi::Store(m, &fstype->module, &m);
    return st->register_filesystem(fstype);
  };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  size_t mounts_before = vfs->mount_count();

  EXPECT_EQ(vfs->Mount("failfs", "/broken"), nullptr);
  EXPECT_EQ(st->mount_calls, 1);
  EXPECT_EQ(st->kill_calls, 0) << "kill_sb must not run after a failed mount";
  EXPECT_EQ(vfs->mount_count(), mounts_before);
  EXPECT_EQ(bench.rt->violation_count(), 0u);
  // The fstype registration survives the failed mount — and a retry fails
  // just as cleanly.
  ASSERT_NE(vfs->FindFilesystem("failfs"), nullptr);
  EXPECT_EQ(vfs->Mount("failfs", "/broken"), nullptr);
  EXPECT_EQ(st->mount_calls, 2);
  // The mountpoint was never claimed: a healthy filesystem can take it.
  ASSERT_NE(bench.kernel->LoadModule(mods::RamfsModuleDef()), nullptr);
  ASSERT_NE(vfs->Mount("ramfs", "/broken"), nullptr);
  EXPECT_EQ(vfs->mount_count(), mounts_before + 1);
  EXPECT_EQ(bench.rt->violation_count(), 0u);
}

// A module quarantined while it holds a pc_bwrite window open: containment
// and the microreboot must not deadlock on the open hold, and the write
// window must not leak to the rebooted instance.
TEST(FailureInjection, BwriteWindowOpenAtViolationStaysConsistent) {
  Bench bench(/*isolated=*/true, QuarantineOptions());
  lxfi::Containment containment(bench.rt.get());
  bench.rt->set_containment(&containment);
  kern::BlockDevice* dev = kern::GetBlockLayer(bench.kernel.get())->CreateRamDisk("rd0", 64);
  ASSERT_NE(dev, nullptr);

  struct BwState {
    std::function<kern::BlockDevice*(const char*)> get_device;
    std::function<kern::CachedPage*(kern::BlockDevice*, uint64_t)> bwrite;
    std::function<int(kern::CachedPage*)> bwrite_done;
  };
  auto st = std::make_shared<BwState>();
  kern::ModuleDef def;
  def.name = "bwriter";
  def.imports = {"dm_get_device", "pc_bwrite", "pc_bwrite_done", "printk"};
  def.init = [st](kern::Module& m) -> int {
    st->get_device = lxfi::GetImport<kern::BlockDevice*, const char*>(m, "dm_get_device");
    st->bwrite = lxfi::GetImport<kern::CachedPage*, kern::BlockDevice*, uint64_t>(m, "pc_bwrite");
    st->bwrite_done = lxfi::GetImport<int, kern::CachedPage*>(m, "pc_bwrite_done");
    return 0;
  };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  lxfi::Principal* shared = bench.rt->CtxOf(m)->shared();

  kern::CachedPage* page = nullptr;
  {
    // The REF over the device comes through the annotated import; the write
    // window over the page payload comes with pc_bwrite's post-copy.
    lxfi::ScopedPrincipal as_module(bench.rt.get(), shared);
    ASSERT_EQ(st->get_device("rd0"), dev);
    page = st->bwrite(dev, 3);
  }
  ASSERT_NE(page, nullptr);
  EXPECT_TRUE(bench.rt->Owns(shared, Capability::Write(page->data, kern::kPcBlockSize)))
      << "the open bwrite window grants the payload";

  // Violation with the window still open (pc_bwrite_done never called).
  containment.OnViolation(shared, lxfi::ViolationKind::kWrite,
                          reinterpret_cast<uintptr_t>(page->data));
  EXPECT_TRUE(m->quarantined());
  EXPECT_EQ(containment.HealthOf("bwriter"), lxfi::ModuleHealth::kQuarantined);

  // No mounts, no filters: the reboot drains immediately — the open page
  // hold must not wedge it.
  EXPECT_EQ(containment.DrainPendingReboots(), 1u);
  kern::Module* fresh = bench.kernel->FindModule("bwriter");
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh, m);
  // The write window did not survive the reboot: the fresh instance starts
  // with no capability over the page payload.
  EXPECT_FALSE(bench.rt->Owns(bench.rt->CtxOf(fresh)->shared(),
                              Capability::Write(page->data, kern::kPcBlockSize)));
  // The kernel (trusted) can close the abandoned window and keep using the
  // cache.
  EXPECT_EQ(kern::GetPageCache(bench.kernel.get())->BwriteDone(page), 0);
  kern::CachedPage* again = kern::GetPageCache(bench.kernel.get())->Bget(dev, 3);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(kern::GetPageCache(bench.kernel.get())->Brelse(again), 0);
}

// Failure induced mid-microreboot: every reload attempt fails, the retry
// budget runs out with its backoff accounted, and the module retires — while
// the rest of the kernel stays serviceable.
TEST(FailureInjection, MidMicrorebootFailureRetiresTheModule) {
  Bench bench(/*isolated=*/true, QuarantineOptions());
  lxfi::Containment containment(bench.rt.get());
  bench.rt->set_containment(&containment);
  kern::Vfs* vfs = kern::GetVfs(bench.kernel.get());
  ASSERT_NE(bench.kernel->LoadModule(mods::RamfsModuleDef()), nullptr);
  ASSERT_NE(vfs->Mount("ramfs", "/mnt"), nullptr);

  auto fail_reload = std::make_shared<bool>(false);
  mods::FsFilterConfig fc;
  fc.module_name = "brittle";
  fc.filter_name = "brittle";
  fc.scope = "mnt";
  kern::ModuleDef def = mods::FsFilterModuleDef(fc);
  auto inner_init = def.init;
  def.init = [fail_reload, inner_init](kern::Module& m) -> int {
    if (*fail_reload) {
      return -kern::kEnomem;
    }
    return inner_init(m);
  };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);

  containment.OnViolation(bench.rt->CtxOf(m)->shared(), lxfi::ViolationKind::kWrite, 0);
  EXPECT_EQ(containment.HealthOf("brittle"), lxfi::ModuleHealth::kQuarantined);
  *fail_reload = true;  // the microreboot's reloads now fail at init

  EXPECT_EQ(containment.DrainPendingReboots(), 0u);
  EXPECT_EQ(containment.HealthOf("brittle"), lxfi::ModuleHealth::kRetired);
  EXPECT_EQ(containment.retired(), 1u);
  EXPECT_EQ(containment.reboots(), 0u);
  EXPECT_FALSE(containment.HasPendingReboots()) << "budget exhausted: no retry churn";
  // Three attempts, exponential backoff: 1000 + 2000 + 4000 simulated ns.
  EXPECT_EQ(containment.backoff_ns(), 7000u);
  EXPECT_EQ(bench.kernel->FindModule("brittle"), nullptr);

  // The kernel around the retired module is untouched: the mount serves and
  // fresh modules load.
  kern::VfsStat vst;
  EXPECT_EQ(vfs->Stat("/mnt", &vst), 0);
  mods::FsFilterConfig ok;
  ok.module_name = "sturdy";
  ok.filter_name = "sturdy";
  ok.scope = "mnt";
  EXPECT_NE(bench.kernel->LoadModule(mods::FsFilterModuleDef(ok)), nullptr);
  EXPECT_EQ(vfs->Stat("/mnt", &vst), 0);
}

TEST(FailureInjection, UnknownFamilyAndDoubleRegister) {
  Bench bench(/*isolated=*/false);
  kern::SocketLayer* sl = kern::GetSocketLayer(bench.kernel.get());
  EXPECT_EQ(sl->SysSocket(123, 0), nullptr);
  kern::NetProtoFamily fam_a{55, 0};
  kern::NetProtoFamily fam_b{55, 0};
  EXPECT_EQ(sl->RegisterFamily(&fam_a), 0);
  EXPECT_NE(sl->RegisterFamily(&fam_b), 0) << "family numbers are exclusive";
  sl->UnregisterFamily(55);
  EXPECT_EQ(sl->RegisterFamily(&fam_b), 0);
}

}  // namespace
