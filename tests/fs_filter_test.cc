// Stackable VFS filters: three filter modules — three mutually-distrustful
// principals — interpose on the same ramfs operation stream in priority
// order, with pre hooks outermost-first and post hooks in reverse, and a
// veto that short-circuits the rest of the chain.
#include <gtest/gtest.h>

#include <cstring>

#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/lxfi/runtime.h"
#include "src/modules/fsfilter/fsfilter.h"
#include "src/modules/ramfs/ramfs.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

class FsFilterTest : public ::testing::TestWithParam<bool> {
 protected:
  FsFilterTest() : bench_(GetParam()) {
    vfs_ = kern::GetVfs(bench_.kernel.get());
    ramfs_ = bench_.kernel->LoadModule(mods::RamfsModuleDef());
    // Register out of priority order on purpose: the chain must sort.
    mid_ = Load("fsflt-mid", 20);
    outer_ = Load("fsflt-outer", 10);
    inner_ = Load("fsflt-inner", 30);
    vfs_->Mount("ramfs", "/mnt");
  }

  kern::Module* Load(const char* name, int priority, const char* veto_prefix = "") {
    mods::FsFilterConfig config;
    config.module_name = name;
    config.filter_name = name;
    config.priority = priority;
    config.veto_prefix = veto_prefix;
    return bench_.kernel->LoadModule(mods::FsFilterModuleDef(config));
  }

  std::shared_ptr<mods::FsFilterState> St(kern::Module* m) { return mods::GetFsFilter(*m); }

  int Touch(const char* path) {
    int err = 0;
    kern::File* f = vfs_->Open(path, kern::kOCreate, &err);
    if (f == nullptr) {
      return err;
    }
    return vfs_->Close(f);
  }

  Bench bench_;
  kern::Vfs* vfs_ = nullptr;
  kern::Module* ramfs_ = nullptr;
  kern::Module* outer_ = nullptr;  // priority 10: runs first
  kern::Module* mid_ = nullptr;    // priority 20
  kern::Module* inner_ = nullptr;  // priority 30: runs last before the fs
};

TEST_P(FsFilterTest, ThreeFiltersStackInPriorityOrder) {
  ASSERT_NE(ramfs_, nullptr);
  ASSERT_NE(outer_, nullptr);
  ASSERT_NE(mid_, nullptr);
  ASSERT_NE(inner_, nullptr);
  ASSERT_EQ(vfs_->filters().count(), 3u);

  kern::VfsStat st;
  ASSERT_EQ(Touch("/mnt/f"), 0);
  ASSERT_EQ(vfs_->Stat("/mnt/f", &st), 0);

  // Every filter saw the create, the open and the stat.
  for (kern::Module* m : {outer_, mid_, inner_}) {
    EXPECT_EQ(St(m)->pre_count(kern::VfsOp::kCreate), 1u) << m->name();
    EXPECT_EQ(St(m)->post_count(kern::VfsOp::kCreate), 1u) << m->name();
    EXPECT_EQ(St(m)->pre_count(kern::VfsOp::kOpen), 1u) << m->name();
    EXPECT_EQ(St(m)->pre_count(kern::VfsOp::kStat), 1u) << m->name();
  }
  // Chain-position tokens: pre runs outer(0) -> mid(1) -> inner(2); post
  // unwinds inner(3) -> mid(2) -> outer(1).
  EXPECT_EQ(St(outer_)->priv->last_pre_token, 0);
  EXPECT_EQ(St(mid_)->priv->last_pre_token, 1);
  EXPECT_EQ(St(inner_)->priv->last_pre_token, 2);
  EXPECT_EQ(St(inner_)->priv->last_post_token, 3);
  EXPECT_EQ(St(mid_)->priv->last_post_token, 2);
  EXPECT_EQ(St(outer_)->priv->last_post_token, 1);

  if (GetParam()) {
    EXPECT_EQ(bench_.rt->violation_count(), 0u);
  }
}

TEST_P(FsFilterTest, EachFilterIsItsOwnPrincipal) {
  if (!GetParam()) {
    GTEST_SKIP() << "principals exist only under LXFI";
  }
  ASSERT_EQ(Touch("/mnt/f"), 0);
  lxfi::Principal* po = bench_.rt->CtxOf(outer_)->Lookup(
      reinterpret_cast<uintptr_t>(St(outer_)->flt));
  lxfi::Principal* pm = bench_.rt->CtxOf(mid_)->Lookup(
      reinterpret_cast<uintptr_t>(St(mid_)->flt));
  ASSERT_NE(po, nullptr);
  ASSERT_NE(pm, nullptr);
  EXPECT_NE(po->module(), pm->module());
  // A filter's module owns its own counters, not its neighbour's.
  lxfi::Principal* shared_outer = bench_.rt->CtxOf(outer_)->shared();
  EXPECT_TRUE(bench_.rt->Owns(
      shared_outer, lxfi::Capability::Write(St(outer_)->priv, sizeof(mods::FsFilterPriv))));
  EXPECT_FALSE(bench_.rt->Owns(
      shared_outer, lxfi::Capability::Write(St(mid_)->priv, sizeof(mods::FsFilterPriv))));
}

TEST_P(FsFilterTest, VetoShortCircuitsTheChain) {
  // A fourth filter between outer and mid vetoes anything named "sec*".
  kern::Module* veto = Load("fsflt-veto", 15, "sec");
  ASSERT_NE(veto, nullptr);
  ASSERT_EQ(vfs_->filters().count(), 4u);

  int err = 0;
  EXPECT_EQ(vfs_->Open("/mnt/secret", kern::kOCreate, &err), nullptr);
  EXPECT_EQ(err, -kern::kEperm);
  EXPECT_EQ(St(veto)->priv->vetoes, 1u);
  // The outer filter ran; the filters below the veto (and the fs) did not.
  EXPECT_EQ(St(outer_)->pre_count(kern::VfsOp::kCreate), 1u);
  EXPECT_EQ(St(mid_)->pre_count(kern::VfsOp::kCreate), 0u);
  EXPECT_EQ(St(inner_)->pre_count(kern::VfsOp::kCreate), 0u);
  kern::VfsStat st;
  EXPECT_EQ(vfs_->Stat("/mnt/secret", &st), -kern::kEnoent) << "the fs never saw the create";
  // Post hooks of the filters whose pre ran (veto included) still unwound.
  EXPECT_EQ(St(outer_)->post_count(kern::VfsOp::kCreate), 1u);
  EXPECT_EQ(St(veto)->post_count(kern::VfsOp::kCreate), 1u);
  EXPECT_EQ(St(mid_)->post_count(kern::VfsOp::kCreate), 0u);

  // Non-matching names pass through the veto filter untouched.
  EXPECT_EQ(Touch("/mnt/public"), 0);
  if (GetParam()) {
    EXPECT_EQ(bench_.rt->violation_count(), 0u);
  }
}

TEST_P(FsFilterTest, UnregisterDropsOutOfTheChain) {
  ASSERT_EQ(Touch("/mnt/a"), 0);
  EXPECT_EQ(St(mid_)->pre_count(kern::VfsOp::kCreate), 1u);
  bench_.kernel->UnloadModule(mid_);
  ASSERT_EQ(vfs_->filters().count(), 2u);
  ASSERT_EQ(Touch("/mnt/b"), 0);
  // Remaining filters keep stacking in order.
  EXPECT_EQ(St(outer_)->pre_count(kern::VfsOp::kCreate), 2u);
  EXPECT_EQ(St(outer_)->priv->last_pre_token, 0);
  EXPECT_EQ(St(inner_)->priv->last_pre_token, 1);
  if (GetParam()) {
    EXPECT_EQ(bench_.rt->violation_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, FsFilterTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

}  // namespace
