// statmon: a monitoring module reads metrics and trace records under full
// enforcement — and a rogue-writer probe proves it can observe the rings
// without ever being able to scribble them.
#include <gtest/gtest.h>

#include <string>

#include "src/base/trace.h"
#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/lxfi/containment.h"
#include "src/lxfi/lxfi_stats.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/violation.h"
#include "src/modules/fsfilter/fsfilter.h"
#include "src/modules/ramfs/ramfs.h"
#include "src/modules/statmon/statmon.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

long InvokePoll(Bench& bench, kern::Module* m) {
  // Kernel-side dispatch through a slot holding the module function: the
  // full indirect-call path (writer-set check, annotation-hash check,
  // wrapper) runs for every poll.
  uintptr_t slot = m->FuncAddr("statmon_poll");
  return bench.kernel->IndirectCall<long, void*>(&slot, "statmon::poll", nullptr);
}

TEST(Statmon, PollsMetricsAndTraceUnderEnforcement) {
  lxfi::TraceBuffer::Global().ResetForTest();
  lxfi::TraceBuffer::SetEnabled(true);
  lxfi::LxfiStats::SetEnabled(true);
  Bench bench(/*isolated=*/true);
  kern::Module* m = bench.kernel->LoadModule(mods::StatmonModuleDef());
  ASSERT_NE(m, nullptr);
  auto st = mods::GetStatmon(*m);
  ASSERT_NE(st, nullptr);

  long n = InvokePoll(bench, m);
  lxfi::TraceBuffer::SetEnabled(false);
  lxfi::LxfiStats::SetEnabled(false);

  EXPECT_EQ(bench.rt->violation_count(), 0u)
      << "a clean poll must not trip any guard: " << bench.rt->DumpState();
  EXPECT_GT(n, 0);
  EXPECT_EQ(st->last_json_len(), n);
  EXPECT_EQ(st->polls(), 1u);
  // Module load itself emitted trace records (module-load, cap grants,
  // crossings), so the poll drained a non-empty stream into module memory.
  EXPECT_GT(st->last_record_count(), 0);
  std::string json(st->json);
  EXPECT_NE(json.find("\"bench\": \"lxfi_stats\""), std::string::npos) << json;
  EXPECT_NE(json.find("principal:"), std::string::npos) << json;
  EXPECT_NE(json.find("statmon"), std::string::npos)
      << "the monitoring module must see its own principal in the snapshot: " << json;
  lxfi::TraceBuffer::Global().ResetForTest();
}

TEST(Statmon, RepeatedPollsStayClean) {
  lxfi::LxfiStats::SetEnabled(true);
  Bench bench(/*isolated=*/true);
  kern::Module* m = bench.kernel->LoadModule(mods::StatmonModuleDef());
  ASSERT_NE(m, nullptr);
  auto st = mods::GetStatmon(*m);
  for (int i = 0; i < 16; ++i) {
    EXPECT_GT(InvokePoll(bench, m), 0);
  }
  lxfi::LxfiStats::SetEnabled(false);
  EXPECT_EQ(st->polls(), 16u);
  EXPECT_EQ(bench.rt->violation_count(), 0u);
}

// The exploit: statmon arms its scribble probe and tries to write straight
// into the runtime-owned trace buffer. The store guard must refuse (the
// module holds no WRITE capability there), the target memory must be
// untouched, and the flight recorder must attribute the attempt to the
// statmon principal at the exact faulting address.
TEST(StatmonExploit, RogueWriterCannotScribbleTraceRing) {
  lxfi::TraceBuffer::Global().ResetForTest();
  Bench bench(/*isolated=*/true);  // default policy: throw (kill the request)
  kern::Module* m = bench.kernel->LoadModule(mods::StatmonModuleDef());
  ASSERT_NE(m, nullptr);
  auto st = mods::GetStatmon(*m);
  st->probe = mods::StatmonProbe::kScribbleRing;
  st->probe_target = &lxfi::TraceBuffer::Global();

  const uint64_t before = *static_cast<uint64_t*>(st->probe_target);
  EXPECT_THROW(InvokePoll(bench, m), lxfi::LxfiViolation);
  EXPECT_EQ(*static_cast<uint64_t*>(st->probe_target), before)
      << "the store must never land";
  // The probe aborted the poll before any snapshot was taken.
  EXPECT_EQ(st->last_json_len(), -1);
  EXPECT_EQ(st->polls(), 0u);

  ASSERT_GE(bench.rt->violation_count(), 1u);
  const auto rec = bench.rt->violations().back();
  EXPECT_EQ(rec.kind, lxfi::ViolationKind::kWrite);
  EXPECT_EQ(rec.fault_addr, reinterpret_cast<uint64_t>(st->probe_target));
  EXPECT_NE(rec.principal.find("statmon"), std::string::npos)
      << "violation must be attributed to the statmon principal, got: " << rec.principal;
  EXPECT_NE(rec.principal_id, 0u);
  EXPECT_EQ(rec.crossing, std::string("statmon_poll"))
      << "innermost crossing label must name the faulting entry point";

  // Disarmed, the module keeps working: enforcement killed the request, not
  // the module.
  st->probe = mods::StatmonProbe::kNone;
  EXPECT_GT(InvokePoll(bench, m), 0);
  EXPECT_EQ(st->polls(), 1u);
}

// The monitoring module watches ANOTHER module go through quarantine and
// microreboot: its polls must surface the containment counters in the stats
// snapshot and the kQuarantine/kMicroreboot records in the trace stream —
// while statmon itself keeps serving, untouched by the neighbour's recovery.
TEST(Statmon, ObservesQuarantineAndMicrorebootOfAnotherModule) {
  lxfi::TraceBuffer::Global().ResetForTest();
  lxfi::TraceBuffer::SetEnabled(true);
  lxfi::LxfiStats::SetEnabled(true);
  lxfi::RuntimeOptions options;
  options.policy = lxfi::ViolationPolicy::kQuarantine;
  options.partitioned_heaps = true;
  Bench bench(/*isolated=*/true, options);
  lxfi::Containment containment(bench.rt.get());
  bench.rt->set_containment(&containment);

  kern::Module* mon = bench.kernel->LoadModule(mods::StatmonModuleDef());
  ASSERT_NE(mon, nullptr);
  auto st = mods::GetStatmon(*mon);
  kern::Vfs* vfs = kern::GetVfs(bench.kernel.get());
  ASSERT_NE(bench.kernel->LoadModule(mods::RamfsModuleDef()), nullptr);
  ASSERT_NE(vfs->Mount("ramfs", "/mnt"), nullptr);
  mods::FsFilterConfig evil_cfg;
  evil_cfg.module_name = "fsflt-evil";
  evil_cfg.filter_name = "fsflt-evil";
  evil_cfg.scope = "mnt";
  kern::Module* evil = bench.kernel->LoadModule(mods::FsFilterModuleDef(evil_cfg));
  ASSERT_NE(evil, nullptr);
  mods::FsFilterConfig victim_cfg;
  victim_cfg.module_name = "fsflt-victim";
  victim_cfg.filter_name = "fsflt-victim";
  victim_cfg.priority = 10;
  victim_cfg.scope = "mnt";
  kern::Module* victim = bench.kernel->LoadModule(mods::FsFilterModuleDef(victim_cfg));
  ASSERT_NE(victim, nullptr);

  auto records_contain = [&](lxfi::TraceEvent ev) {
    for (long i = 0; i < st->last_record_count(); ++i) {
      if (st->records[i].event == static_cast<uint16_t>(ev)) {
        return true;
      }
    }
    return false;
  };

  // Baseline poll drains the load-time backlog so the next poll's window is
  // the containment sequence itself.
  ASSERT_GT(InvokePoll(bench, mon), 0);
  std::string json(st->json);
  EXPECT_NE(json.find("containment"), std::string::npos)
      << "the stats snapshot must carry the containment row: " << json;
  EXPECT_NE(json.find("\"quarantines\": 0"), std::string::npos) << json;

  auto evil_st = mods::GetFsFilter(*evil);
  evil_st->probe_target = &mods::GetFsFilter(*victim)->priv->pre_count[0];
  evil_st->probe = mods::FsFilterProbe::kScribbleTarget;
  kern::VfsStat vst;
  EXPECT_THROW(vfs->Stat("/mnt", &vst), lxfi::LxfiViolation);
  EXPECT_EQ(containment.quarantines(), 1u);

  ASSERT_GT(InvokePoll(bench, mon), 0);
  EXPECT_TRUE(records_contain(lxfi::TraceEvent::kQuarantine))
      << "the poll after the violation must surface the quarantine record";
  json.assign(st->json);
  EXPECT_NE(json.find("\"quarantines\": 1"), std::string::npos) << json;

  evil_st->probe = mods::FsFilterProbe::kNone;
  ASSERT_EQ(containment.DrainPendingReboots(), 1u);
  ASSERT_GT(InvokePoll(bench, mon), 0);
  EXPECT_TRUE(records_contain(lxfi::TraceEvent::kMicroreboot))
      << "the poll after the drain must surface the microreboot record";
  json.assign(st->json);
  EXPECT_NE(json.find("\"reboots\": 1"), std::string::npos) << json;

  // The observer itself sailed through the neighbour's recovery.
  EXPECT_EQ(st->polls(), 3u);
  EXPECT_EQ(containment.HealthOf("statmon"), lxfi::ModuleHealth::kHealthy);
  lxfi::TraceBuffer::SetEnabled(false);
  lxfi::LxfiStats::SetEnabled(false);
  lxfi::TraceBuffer::Global().ResetForTest();
}

}  // namespace
