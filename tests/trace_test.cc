// lxfi-trace: trace-ring integrity, static-key gating, per-principal
// metrics differential, violation flight recorder, and the GuardStats
// Reset race regression.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/base/trace.h"
#include "src/lxfi/lxfi_stats.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"
#include "tests/testbench.h"

namespace {

using lxfi::TraceBuffer;
using lxfi::TraceEvent;
using lxfi::TraceRecord;
using lxfitest::Bench;

// --- static-key gate ---------------------------------------------------------

TEST(TraceGate, DisabledTracepointEvaluatesNoArguments) {
  TraceBuffer& tb = TraceBuffer::Global();
  tb.ResetForTest();
  lxfi::TraceBuffer::SetEnabled(false);
  int evals = 0;
  auto bump = [&evals]() -> uint64_t {
    ++evals;
    return 1;
  };
  TRACE_EVENT(TraceEvent::kGuardEnter, 0, bump(), bump());
  EXPECT_EQ(evals, 0) << "disabled tracepoints must not evaluate arguments";
  std::vector<TraceRecord> out;
  EXPECT_EQ(tb.Drain(&out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tb.TotalDrops(), 0u);
}

TEST(TraceGate, EnabledTracepointLandsOneRecord) {
  TraceBuffer& tb = TraceBuffer::Global();
  tb.ResetForTest();
  lxfi::TraceBuffer::SetEnabled(true);
  TRACE_EVENT(TraceEvent::kCapGrant, 42, 0x1000, 64);
  lxfi::TraceBuffer::SetEnabled(false);
  std::vector<TraceRecord> out;
  ASSERT_EQ(tb.Drain(&out), 1u);
  EXPECT_EQ(out[0].event, static_cast<uint16_t>(TraceEvent::kCapGrant));
  EXPECT_EQ(out[0].principal, 42u);
  EXPECT_EQ(out[0].cpu, 0u);
  EXPECT_EQ(out[0].arg0, 0x1000u);
  EXPECT_EQ(out[0].arg1, 64u);
  EXPECT_GT(out[0].ts_ns, 0u);
  tb.ResetForTest();
}

// --- ring protocol: drop-never-overwrite, exact accounting -------------------

TEST(TraceRing, FullRingDropsAndCountsExactly) {
  TraceBuffer& tb = TraceBuffer::Global();
  tb.ResetForTest();
  const uint64_t extra = 100;
  for (uint64_t i = 0; i < TraceBuffer::kRingCapacity + extra; ++i) {
    tb.Emit(TraceEvent::kGuardEnter, 7, i, ~i);
  }
  EXPECT_EQ(tb.drops(0), extra);
  std::vector<TraceRecord> out;
  ASSERT_EQ(tb.Drain(&out), TraceBuffer::kRingCapacity);
  // A full ring keeps the oldest records (drop-newest): the drained stream
  // is exactly the first kRingCapacity emissions, in order.
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].arg0, i);
    ASSERT_EQ(out[i].arg1, ~static_cast<uint64_t>(i));
  }
  // Drained tail frees space again.
  tb.Emit(TraceEvent::kGuardExit, 7, 999, 0);
  out.clear();
  ASSERT_EQ(tb.Drain(&out), 1u);
  EXPECT_EQ(out[0].arg0, 999u);
  tb.ResetForTest();
}

TEST(TraceRing, DrainIntoRespectsCallerCapacity) {
  TraceBuffer& tb = TraceBuffer::Global();
  tb.ResetForTest();
  for (uint64_t i = 0; i < 10; ++i) {
    tb.Emit(TraceEvent::kBioSubmit, 0, i, 0);
  }
  TraceRecord buf[4];
  EXPECT_EQ(tb.DrainInto(buf, 4), 4u);
  EXPECT_EQ(tb.DrainInto(buf, 4), 4u);
  EXPECT_EQ(tb.DrainInto(buf, 4), 2u);
  EXPECT_EQ(tb.DrainInto(buf, 4), 0u);
  tb.ResetForTest();
}

// --- the 3-CPU storm: writers vs a concurrently draining reader --------------
//
// Each writer owns one shard and emits a self-checking payload
// (arg1 = arg0 ^ per-shard magic). The reader drains concurrently the whole
// time. Afterwards every drained record must be untorn, per-shard sequence
// numbers strictly increasing, and drained + dropped must equal emitted
// exactly. Run under TSan this is the data-race regression for the SPSC
// head/tail protocol.
TEST(TraceStorm, ThreeWritersOneDrainerZeroTornExactDrops) {
  TraceBuffer& tb = TraceBuffer::Global();
  tb.ResetForTest();
  constexpr int kWriters = 3;
  constexpr uint64_t kPerWriter = 60000;
  constexpr uint64_t kMagic[kWriters + 1] = {0, 0x9e3779b97f4a7c15ull, 0xc2b2ae3d27d4eb4full,
                                             0x165667b19e3779f9ull};

  std::atomic<bool> writers_done{false};
  std::vector<TraceRecord> drained;
  std::thread reader([&] {
    std::vector<TraceRecord> batch;
    while (!writers_done.load(std::memory_order_acquire)) {
      batch.clear();
      tb.Drain(&batch);
      drained.insert(drained.end(), batch.begin(), batch.end());
    }
    batch.clear();
    tb.Drain(&batch);
    drained.insert(drained.end(), batch.begin(), batch.end());
  });

  std::vector<std::thread> writers;
  for (int w = 1; w <= kWriters; ++w) {
    writers.emplace_back([&tb, w, &kMagic] {
      lxfi::SetThisShardIndex(w);
      for (uint64_t seq = 0; seq < kPerWriter; ++seq) {
        tb.Emit(TraceEvent::kGuardEnter, static_cast<uint32_t>(w), seq, seq ^ kMagic[w]);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  writers_done.store(true, std::memory_order_release);
  reader.join();

  uint64_t count[kWriters + 1] = {};
  int64_t prev_seq[kWriters + 1] = {-1, -1, -1, -1};
  uint64_t torn = 0;
  uint64_t out_of_order = 0;
  for (const TraceRecord& r : drained) {
    ASSERT_GE(r.cpu, 1);
    ASSERT_LE(r.cpu, kWriters);
    if (r.event != static_cast<uint16_t>(TraceEvent::kGuardEnter) || r.principal != r.cpu ||
        r.arg1 != (r.arg0 ^ kMagic[r.cpu])) {
      ++torn;
    }
    if (static_cast<int64_t>(r.arg0) <= prev_seq[r.cpu]) {
      ++out_of_order;
    }
    prev_seq[r.cpu] = static_cast<int64_t>(r.arg0);
    ++count[r.cpu];
  }
  EXPECT_EQ(torn, 0u) << "drained a torn record";
  EXPECT_EQ(out_of_order, 0u) << "per-shard order not preserved";
  for (int w = 1; w <= kWriters; ++w) {
    EXPECT_EQ(count[w] + tb.drops(w), kPerWriter)
        << "shard " << w << ": drained + dropped must equal emitted exactly";
  }
  tb.ResetForTest();
}

// --- differential: per-principal crossings vs GuardStats ---------------------

uint64_t TotalCrossings(const lxfi::Runtime& rt) {
  uint64_t total = 0;
  for (const auto& pm : lxfi::LxfiStats::Collect(rt)) {
    total += pm.crossings;
  }
  return total;
}

// On a clean fixed workload with metrics enabled throughout, every wrapper
// exit both bumps GuardStats kFunctionExit and attributes one crossing to a
// principal — so the two totals move in lockstep. This pins the metrics
// registry to the guard counters it claims to refine.
TEST(LxfiStatsDifferential, CrossingsMatchFunctionExitGuards) {
  lxfi::LxfiStats::SetEnabled(true);
  Bench bench(/*isolated=*/true);
  lxfi::Runtime* rt = bench.rt.get();
  ASSERT_TRUE(rt->annotations().Register("stat_ops::tick", {"arg"}, "").ok());
  int hits = 0;
  kern::ModuleDef def;
  def.name = "diffmod";
  def.data_size = 16;
  def.imports = {"printk"};
  def.functions = {lxfi::DeclareFunction<void, void*>("tick", "stat_ops::tick",
                                                      [&hits](void*) { ++hits; })};
  def.init = [](kern::Module&) { return 0; };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  auto* slot = static_cast<uintptr_t*>(m->data());
  *slot = m->FuncAddr("tick");

  const uint64_t exits_before = rt->guards().count(lxfi::GuardType::kFunctionExit);
  const uint64_t crossings_before = TotalCrossings(*rt);
  constexpr int kCalls = 257;
  for (int i = 0; i < kCalls; ++i) {
    bench.kernel->IndirectCall<void, void*>(slot, "stat_ops::tick", nullptr);
  }
  EXPECT_EQ(hits, kCalls);
  const uint64_t exits = rt->guards().count(lxfi::GuardType::kFunctionExit) - exits_before;
  const uint64_t crossings = TotalCrossings(*rt) - crossings_before;
  EXPECT_GE(exits, static_cast<uint64_t>(kCalls));
  EXPECT_EQ(crossings, exits)
      << "per-principal crossing totals must equal the kFunctionExit guard count";

  // Histogram conservation: every counted crossing lands in exactly one
  // latency bucket, and its nanoseconds are accounted.
  for (const auto& pm : lxfi::LxfiStats::Collect(*rt)) {
    uint64_t hist_total = 0;
    for (uint64_t b : pm.hist) {
      hist_total += b;
    }
    EXPECT_EQ(hist_total, pm.crossings) << pm.name;
  }

  std::string json = lxfi::LxfiStats::DumpJson(*rt);
  EXPECT_NE(json.find("\"bench\": \"lxfi_stats\""), std::string::npos) << json;
  EXPECT_NE(json.find("principal:"), std::string::npos) << json;
  EXPECT_NE(json.find("guard:"), std::string::npos) << json;
  lxfi::LxfiStats::SetEnabled(false);
}

// --- violation flight recorder -----------------------------------------------

TEST(FlightRecorder, BoundedRingKeepsExactTotalAndLastN) {
  lxfi::RuntimeOptions options;
  options.policy = lxfi::ViolationPolicy::kCount;
  Bench bench(/*isolated=*/true, options);
  lxfi::Runtime* rt = bench.rt.get();

  constexpr uint64_t kTotal = 150;  // > 2x the ring
  for (uint64_t i = 0; i < kTotal; ++i) {
    rt->RaiseViolation(lxfi::ViolationKind::kWrite, "probe " + std::to_string(i), 0x1000 + i);
  }
  EXPECT_EQ(rt->violation_count(), kTotal);
  auto v = rt->violations();
  ASSERT_EQ(v.size(), lxfi::Runtime::kViolationRingSize);
  EXPECT_EQ(v.front().seq, kTotal - lxfi::Runtime::kViolationRingSize + 1);
  EXPECT_EQ(v.back().seq, kTotal);
  EXPECT_EQ(v.back().details, "probe " + std::to_string(kTotal - 1));
  EXPECT_EQ(v.back().fault_addr, 0x1000 + kTotal - 1);
  EXPECT_EQ(v.back().kind, lxfi::ViolationKind::kWrite);

  // ClearViolations moves the visible baseline but never the sequence (the
  // ExecGuards pre-memo protocol depends on monotonicity).
  rt->ClearViolations();
  EXPECT_EQ(rt->violation_count(), 0u);
  EXPECT_TRUE(rt->violations().empty());
  rt->RaiseViolation(lxfi::ViolationKind::kCall, "after clear", 0x2000);
  EXPECT_EQ(rt->violation_count(), 1u);
  auto v2 = rt->violations();
  ASSERT_EQ(v2.size(), 1u);
  EXPECT_EQ(v2.back().seq, kTotal + 1) << "sequence must stay monotone across ClearViolations";
  EXPECT_EQ(v2.back().details, "after clear");
}

TEST(FlightRecorder, AttributesPrincipalAndFaultAddress) {
  lxfi::RuntimeOptions options;
  options.policy = lxfi::ViolationPolicy::kCount;
  Bench bench(/*isolated=*/true, options);
  lxfi::Runtime* rt = bench.rt.get();
  kern::ModuleDef def;
  def.name = "golden";
  def.data_size = 16;
  def.imports = {"printk"};
  def.init = [](kern::Module&) { return 0; };
  kern::Module* m = bench.kernel->LoadModule(std::move(def));
  ASSERT_NE(m, nullptr);
  lxfi::Principal* shared = rt->CtxOf(m)->shared();

  {
    lxfi::ScopedPrincipal as_module(rt, shared);
    rt->RaiseViolation(lxfi::ViolationKind::kWrite, "golden probe", 0xdeadbeef);
  }
  ASSERT_EQ(rt->violation_count(), 1u);
  const auto rec = rt->violations().back();
  EXPECT_EQ(rec.kind, lxfi::ViolationKind::kWrite);
  EXPECT_EQ(rec.details, "golden probe");
  EXPECT_EQ(rec.fault_addr, 0xdeadbeefu);
  EXPECT_EQ(rec.principal, shared->DebugName());
  EXPECT_EQ(rec.principal_id, shared->trace_id());
  EXPECT_NE(rec.principal_id, 0u);
  EXPECT_EQ(rec.seq, 1u);
}

// --- GuardStats::Reset vs concurrent shard writers (TSan regression) ---------
//
// Reset used to zero the shard cells with plain stores racing the owning
// threads' single-writer increments — a data race that could resurrect
// pre-reset counts. The baseline-snapshot Reset never writes shards; this
// storm is the TSan witness, and the clamp assertion catches the underflow
// symptom even without TSan.
TEST(GuardStatsReset, RaceFreeAgainstConcurrentCountAndAddTime) {
  lxfi::GuardStats stats;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int shard = 1; shard <= 2; ++shard) {
    threads.emplace_back([&stats, &stop, shard] {
      lxfi::SetThisShardIndex(shard);
      while (!stop.load(std::memory_order_relaxed)) {
        stats.Count(lxfi::GuardType::kMemWrite);
        stats.AddTime(lxfi::GuardType::kMemWrite, 3);
      }
    });
  }
  threads.emplace_back([&stats, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      stats.Reset();
    }
  });
  for (int i = 0; i < 20000; ++i) {
    // Clamped subtraction: a count read racing Reset must never underflow.
    EXPECT_LT(stats.count(lxfi::GuardType::kMemWrite), uint64_t{1} << 60);
    EXPECT_LT(stats.time_ns(lxfi::GuardType::kMemWrite), uint64_t{1} << 60);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) {
    t.join();
  }
  // Quiescent: Reset then one more count from this thread is visible.
  stats.Reset();
  EXPECT_EQ(stats.count(lxfi::GuardType::kMemWrite), 0u);
  stats.Count(lxfi::GuardType::kMemWrite);
  EXPECT_EQ(stats.count(lxfi::GuardType::kMemWrite), 1u);
}

}  // namespace
