// Two NICs bound by one e1000 module: the driver-side multi-principal story
// (§2.1 / §3.1). Each NIC gets its own principal; traffic flows through
// both; and one NIC's principal holds no capabilities for the other's
// rings, registers or device objects.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/net/netdevice.h"
#include "src/kernel/net/nicsim.h"
#include "src/kernel/net/skbuff.h"
#include "src/lxfi/mem.h"
#include "src/modules/e1000/e1000.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

class MultiNicTest : public ::testing::TestWithParam<bool> {
 protected:
  MultiNicTest() : bench_(GetParam()) {
    hw0_ = mods::PlugInE1000Device(bench_.kernel.get(), /*irq=*/5);
    hw1_ = mods::PlugInE1000Device(bench_.kernel.get(), /*irq=*/6);
    module_ = bench_.kernel->LoadModule(mods::E1000ModuleDef());
    stack_ = kern::GetNetStack(bench_.kernel.get());
    stack_->SetProtocolHandler(0x0800, [this](kern::SkBuff* skb) {
      ++delivered_;
      kern::FreeSkb(bench_.kernel.get(), skb);
    });
  }

  kern::SkBuff* Packet() {
    kern::SkBuff* skb = kern::AllocSkb(bench_.kernel.get(), 64);
    uint8_t* p = kern::SkbPut(skb, 64);
    p[0] = 0x00;
    p[1] = 0x08;
    return skb;
  }

  Bench bench_;
  kern::NicHw* hw0_ = nullptr;
  kern::NicHw* hw1_ = nullptr;
  kern::Module* module_ = nullptr;
  kern::NetStack* stack_ = nullptr;
  int delivered_ = 0;
};

TEST_P(MultiNicTest, ProbeBindsBothDevices) {
  ASSERT_NE(module_, nullptr);
  auto st = mods::GetE1000(*module_);
  ASSERT_EQ(st->privs.size(), 2u);
  EXPECT_NE(stack_->DevByIndex(1), nullptr);
  EXPECT_NE(stack_->DevByIndex(2), nullptr);
}

TEST_P(MultiNicTest, TrafficFlowsIndependently) {
  kern::NetDevice* dev0 = stack_->DevByIndex(1);
  kern::NetDevice* dev1 = stack_->DevByIndex(2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(stack_->DevQueueXmit(dev0, Packet()), kern::kNetdevTxOk);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(stack_->DevQueueXmit(dev1, Packet()), kern::kNetdevTxOk);
  }
  hw0_->ProcessTx();
  hw1_->ProcessTx();
  EXPECT_EQ(hw0_->frames_tx(), 10u);
  EXPECT_EQ(hw1_->frames_tx(), 4u);

  uint8_t frame[64] = {0x00, 0x08};
  hw1_->InjectRx(frame, sizeof(frame));
  stack_->RunSoftirq();
  EXPECT_EQ(delivered_, 1);
  EXPECT_EQ(dev1->rx_packets, 1u);
  EXPECT_EQ(dev0->rx_packets, 0u);
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, MultiNicTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

TEST(MultiNicPrincipals, NicsAreDistinctAndIsolated) {
  Bench bench(/*isolated=*/true);
  mods::PlugInE1000Device(bench.kernel.get(), 5);
  mods::PlugInE1000Device(bench.kernel.get(), 6);
  kern::Module* m = bench.kernel->LoadModule(mods::E1000ModuleDef());
  ASSERT_NE(m, nullptr);
  auto st = mods::GetE1000(*m);
  ASSERT_EQ(st->privs.size(), 2u);
  mods::E1000Priv* nic0 = st->privs[0];
  mods::E1000Priv* nic1 = st->privs[1];

  lxfi::ModuleCtx* ctx = bench.rt->CtxOf(m);
  lxfi::Principal* p0 = ctx->Lookup(reinterpret_cast<uintptr_t>(nic0->ndev));
  lxfi::Principal* p1 = ctx->Lookup(reinterpret_cast<uintptr_t>(nic1->ndev));
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_NE(p0, p1) << "two NICs, two principals";

  // Each principal owns its own device but not the sibling's.
  EXPECT_TRUE(bench.rt->Owns(p0, lxfi::Capability::Ref("pci_dev", nic0->pdev)));
  EXPECT_FALSE(bench.rt->Owns(p0, lxfi::Capability::Ref("pci_dev", nic1->pdev)));
  EXPECT_TRUE(bench.rt->Owns(p0, lxfi::Capability::Write(nic0->regs, sizeof(kern::NicRegs))));
  EXPECT_FALSE(bench.rt->Owns(p0, lxfi::Capability::Write(nic1->regs, sizeof(kern::NicRegs))));
  EXPECT_FALSE(bench.rt->Owns(p0, lxfi::Capability::Write(nic1->tx_ring,
                                                          sizeof(kern::NicTxDesc))));
  // The global principal sees both (cross-instance maintenance).
  EXPECT_TRUE(bench.rt->Owns(ctx->global(),
                             lxfi::Capability::Write(nic1->regs, sizeof(kern::NicRegs))));
}

TEST(MultiNicPrincipals, CompromisedNicCannotDriveSibling) {
  // Simulate module code running for NIC 0 attempting to program NIC 1's
  // tail register — the §2.1 "compromise of one instance" scenario.
  Bench bench(/*isolated=*/true);
  mods::PlugInE1000Device(bench.kernel.get(), 5);
  mods::PlugInE1000Device(bench.kernel.get(), 6);
  kern::Module* m = bench.kernel->LoadModule(mods::E1000ModuleDef());
  auto st = mods::GetE1000(*m);
  lxfi::ModuleCtx* ctx = bench.rt->CtxOf(m);
  lxfi::Principal* p0 =
      ctx->Lookup(reinterpret_cast<uintptr_t>(st->privs[0]->ndev));
  lxfi::ScopedPrincipal as_nic0(bench.rt.get(), p0);
  EXPECT_THROW(lxfi::Store(*m, &st->privs[1]->regs->tdt, 63u), lxfi::LxfiViolation);
  // Its own register file is fine.
  lxfi::Store(*m, &st->privs[0]->regs->ims, 3u);
}

}  // namespace
