// Unit and property tests for the capability tables (§3.2, §5).
#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/lxfi/cap_table.h"

namespace {

using lxfi::CapKind;
using lxfi::CapTable;
using lxfi::Capability;

constexpr uintptr_t kBase = 0x7f0000000000ull;

TEST(CapTableWrite, GrantThenCheckExactRange) {
  CapTable table;
  table.GrantWrite(kBase, 128);
  EXPECT_TRUE(table.CheckWrite(kBase, 128));
  EXPECT_TRUE(table.CheckWrite(kBase, 1));
  EXPECT_TRUE(table.CheckWrite(kBase + 127, 1));
}

TEST(CapTableWrite, ChecksOutsideRangeFail) {
  CapTable table;
  table.GrantWrite(kBase, 128);
  EXPECT_FALSE(table.CheckWrite(kBase + 128, 1));
  EXPECT_FALSE(table.CheckWrite(kBase - 1, 1));
  EXPECT_FALSE(table.CheckWrite(kBase + 64, 128));  // runs past the end
}

TEST(CapTableWrite, EmptyTableRejectsEverything) {
  CapTable table;
  EXPECT_FALSE(table.CheckWrite(kBase, 1));
  EXPECT_FALSE(table.CheckWrite(0, 8));
}

TEST(CapTableWrite, ZeroSizeCheckIsVacuouslyTrue) {
  CapTable table;
  EXPECT_TRUE(table.CheckWrite(kBase, 0));
}

TEST(CapTableWrite, RangeSpanningPagesIsFoundFromAnyPage) {
  CapTable table;
  // 3 pages starting mid-page.
  table.GrantWrite(kBase + 100, 3 * 4096);
  EXPECT_TRUE(table.CheckWrite(kBase + 100, 8));
  EXPECT_TRUE(table.CheckWrite(kBase + 5000, 8));
  EXPECT_TRUE(table.CheckWrite(kBase + 100 + 3 * 4096 - 8, 8));
  EXPECT_FALSE(table.CheckWrite(kBase + 100 + 3 * 4096, 8));
}

TEST(CapTableWrite, RevokeOverlappingRemovesWholeRange) {
  CapTable table;
  table.GrantWrite(kBase, 256);
  // Revoking any overlapping window kills the whole granted range — the
  // conservative semantics transfer() needs.
  EXPECT_TRUE(table.RevokeWriteOverlapping(kBase + 64, 8));
  EXPECT_FALSE(table.CheckWrite(kBase, 8));
  EXPECT_FALSE(table.CheckWrite(kBase + 200, 8));
}

TEST(CapTableWrite, RevokeOnlyHitsOverlaps) {
  CapTable table;
  table.GrantWrite(kBase, 64);
  table.GrantWrite(kBase + 1024, 64);
  EXPECT_TRUE(table.RevokeWriteOverlapping(kBase, 64));
  EXPECT_FALSE(table.CheckWrite(kBase, 8));
  EXPECT_TRUE(table.CheckWrite(kBase + 1024, 64));
}

TEST(CapTableWrite, RevokeMissReturnsFalse) {
  CapTable table;
  table.GrantWrite(kBase, 64);
  EXPECT_FALSE(table.RevokeWriteOverlapping(kBase + 4096, 64));
  EXPECT_TRUE(table.CheckWrite(kBase, 64));
}

TEST(CapTableWrite, MultiPageRangeRevokedFromAllBuckets) {
  CapTable table;
  table.GrantWrite(kBase, 8 * 4096);
  EXPECT_TRUE(table.RevokeWriteOverlapping(kBase + 7 * 4096, 1));
  for (int page = 0; page < 8; ++page) {
    EXPECT_FALSE(table.CheckWrite(kBase + static_cast<uintptr_t>(page) * 4096, 8))
        << "stale entry in bucket " << page;
  }
}

TEST(CapTableWrite, DuplicateGrantIsIdempotent) {
  CapTable table;
  table.GrantWrite(kBase, 64);
  table.GrantWrite(kBase, 64);
  EXPECT_EQ(table.write_count(), 1u);
  EXPECT_TRUE(table.RevokeWriteOverlapping(kBase, 64));
  EXPECT_FALSE(table.CheckWrite(kBase, 8));
}

TEST(CapTableCall, GrantCheckRevoke) {
  CapTable table;
  table.GrantCall(0xffffffff81000100ull);
  EXPECT_TRUE(table.CheckCall(0xffffffff81000100ull));
  EXPECT_FALSE(table.CheckCall(0xffffffff81000200ull));
  EXPECT_TRUE(table.RevokeCall(0xffffffff81000100ull));
  EXPECT_FALSE(table.CheckCall(0xffffffff81000100ull));
}

TEST(CapTableRef, TypedOwnership) {
  CapTable table;
  lxfi::RefTypeId pci = lxfi::RefType("pci_dev");
  lxfi::RefTypeId netdev = lxfi::RefType("net_device");
  table.GrantRef(pci, kBase);
  EXPECT_TRUE(table.CheckRef(pci, kBase));
  // Same address, different type: no.
  EXPECT_FALSE(table.CheckRef(netdev, kBase));
  // Same type, different address: no.
  EXPECT_FALSE(table.CheckRef(pci, kBase + 8));
}

TEST(CapTableGeneric, GrantCheckRevokeDispatchByKind) {
  CapTable table;
  Capability w = Capability::Write(kBase, 64);
  Capability c = Capability::Call(0x1234);
  Capability r = Capability::Ref(lxfi::RefType("socket"), kBase);
  table.Grant(w);
  table.Grant(c);
  table.Grant(r);
  EXPECT_TRUE(table.Check(w));
  EXPECT_TRUE(table.Check(c));
  EXPECT_TRUE(table.Check(r));
  EXPECT_TRUE(table.Revoke(w));
  EXPECT_TRUE(table.Revoke(c));
  EXPECT_TRUE(table.Revoke(r));
  EXPECT_FALSE(table.Check(w));
  EXPECT_FALSE(table.Check(c));
  EXPECT_FALSE(table.Check(r));
}

TEST(CapTableGeneric, ClearDropsEverything) {
  CapTable table;
  table.GrantWrite(kBase, 64);
  table.GrantCall(1);
  table.GrantRef(2, 3);
  table.Clear();
  EXPECT_EQ(table.write_count(), 0u);
  EXPECT_EQ(table.call_count(), 0u);
  EXPECT_EQ(table.ref_count(), 0u);
}

// --- property tests: the paged-hash table must agree with a brute-force
// reference on random workloads --------------------------------------------

struct RefRange {
  uintptr_t addr;
  size_t size;
};

class WriteTableProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriteTableProperty, MatchesBruteForceReference) {
  lxfi::Rng rng(GetParam());
  CapTable table;
  std::vector<RefRange> reference;

  for (int step = 0; step < 2000; ++step) {
    int op = static_cast<int>(rng.Below(10));
    uintptr_t addr = kBase + rng.Below(64) * 512;
    size_t size = 1 + rng.Below(12000);  // up to ~3 pages
    if (op < 4) {
      table.GrantWrite(addr, size);
      bool present = false;
      for (const RefRange& r : reference) {
        present = present || (r.addr == addr && r.size == size);
      }
      if (!present) {
        reference.push_back({addr, size});
      }
    } else if (op < 6) {
      table.RevokeWriteOverlapping(addr, size);
      for (auto it = reference.begin(); it != reference.end();) {
        bool overlap = it->addr < addr + size && addr < it->addr + it->size;
        it = overlap ? reference.erase(it) : it + 1;
      }
    } else {
      uintptr_t qaddr = kBase + rng.Below(64) * 512 + rng.Below(64);
      size_t qsize = 1 + rng.Below(4096);
      bool expected = false;
      for (const RefRange& r : reference) {
        expected = expected || (r.addr <= qaddr && qaddr + qsize <= r.addr + r.size);
      }
      ASSERT_EQ(table.CheckWrite(qaddr, qsize), expected)
          << "divergence at step " << step << " addr=" << qaddr << " size=" << qsize;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteTableProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- 4 KiB bucket-boundary straddling (the stale-copy regression class) -----
//
// A range intersecting N buckets has a copy in each; every mutation must act
// on all copies or a later single-bucket probe sees a stale one. These tests
// pin the exact straddle geometries, asserted against the same brute-force
// reference the property test uses.

TEST(CapTableStraddle, RevokeViaOneBucketScrubsTheOther) {
  CapTable table;
  // [kBase+4000, kBase+4300) straddles the bucket boundary at kBase+4096.
  table.GrantWrite(kBase + 4000, 300);
  // Revoke through a window that only touches the *second* bucket.
  EXPECT_TRUE(table.RevokeWriteOverlapping(kBase + 4200, 8));
  EXPECT_FALSE(table.CheckWrite(kBase + 4000, 8));  // first-bucket copy gone
  EXPECT_FALSE(table.CheckWrite(kBase + 4100, 8));
  EXPECT_EQ(table.write_count(), 0u);
}

TEST(CapTableStraddle, AdjacentStraddlersRevokeIndependently) {
  CapTable table;
  table.GrantWrite(kBase + 4000, 200);  // straddles page 0/1 boundary
  table.GrantWrite(kBase + 8100, 200);  // inside page 1's neighbor page... page 1
  table.GrantWrite(kBase + 8000, 300);  // shares page 1 with the straddler
  EXPECT_TRUE(table.RevokeWriteOverlapping(kBase + 4096, 4));  // hits only the first
  EXPECT_FALSE(table.CheckWrite(kBase + 4000, 8));
  EXPECT_TRUE(table.CheckWrite(kBase + 8100, 8));
  EXPECT_TRUE(table.CheckWrite(kBase + 8000, 8));
}

TEST(CapTableStraddle, ExactBoundaryRangeEndsAtBucketEdge) {
  CapTable table;
  // Ends exactly at a bucket boundary: must not claim the next bucket.
  table.GrantWrite(kBase, 4096);
  EXPECT_TRUE(table.CheckWrite(kBase + 4088, 8));
  EXPECT_FALSE(table.CheckWrite(kBase + 4096, 1));
  // Starts exactly at a bucket boundary.
  table.GrantWrite(kBase + 8192, 64);
  EXPECT_TRUE(table.CheckWrite(kBase + 8192, 64));
  EXPECT_FALSE(table.CheckWrite(kBase + 8191, 1));
}

TEST(CapTableStraddle, ZeroSizeOpsAreInert) {
  CapTable table;
  table.GrantWrite(kBase, 0);  // grants nothing
  EXPECT_FALSE(table.CheckWrite(kBase, 1));
  EXPECT_EQ(table.write_count(), 0u);
  table.GrantWrite(kBase, 64);
  EXPECT_FALSE(table.RevokeWriteOverlapping(kBase, 0));  // revokes nothing
  EXPECT_TRUE(table.CheckWrite(kBase, 64));
  EXPECT_TRUE(table.CheckWrite(kBase + 64, 0));  // vacuously true
}

TEST(CapTableStraddle, WriteRangesDeduplicatesAndSortsDeterministically) {
  CapTable table;
  table.GrantWrite(kBase + 4000, 3 * 4096);  // 4 buckets, one logical range
  table.GrantWrite(kBase, 64);
  table.GrantWrite(kBase, 32);  // same addr, smaller size: distinct range
  std::vector<Capability> ranges = table.WriteRanges();
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].addr, kBase);
  EXPECT_EQ(ranges[0].size, 32u);
  EXPECT_EQ(ranges[1].addr, kBase);
  EXPECT_EQ(ranges[1].size, 64u);
  EXPECT_EQ(ranges[2].addr, kBase + 4000);
  EXPECT_EQ(ranges[2].size, 3u * 4096u);
  // Stable across repeated calls (flat-table iteration order must not leak).
  std::vector<Capability> again = table.WriteRanges();
  ASSERT_EQ(again.size(), ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_TRUE(again[i] == ranges[i]);
  }
}

// Randomized straddle-heavy property: ranges sized near multiples of 4 KiB so
// nearly every grant straddles, revokes windowed to single buckets.
class StraddleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StraddleProperty, MatchesBruteForceReference) {
  lxfi::Rng rng(GetParam());
  CapTable table;
  std::vector<RefRange> reference;

  for (int step = 0; step < 4000; ++step) {
    uintptr_t addr = kBase + rng.Below(16) * 4096 + 4096 - 64 + rng.Below(128);
    size_t size = 1 + rng.Below(3) * 4096 + rng.Below(200);
    int op = static_cast<int>(rng.Below(10));
    if (op < 4) {
      table.GrantWrite(addr, size);
      bool present = false;
      for (const RefRange& r : reference) {
        present = present || (r.addr == addr && r.size == size);
      }
      if (!present) {
        reference.push_back({addr, size});
      }
    } else if (op < 6) {
      // Window the revoke to one bucket to stress cross-bucket scrubbing.
      uintptr_t waddr = addr & ~uintptr_t{4095};
      table.RevokeWriteOverlapping(waddr, 64);
      for (auto it = reference.begin(); it != reference.end();) {
        bool overlap = it->addr < waddr + 64 && waddr < it->addr + it->size;
        it = overlap ? reference.erase(it) : it + 1;
      }
    } else {
      uintptr_t qaddr = kBase + rng.Below(20) * 4096 + rng.Below(4096);
      size_t qsize = 1 + rng.Below(8192);
      bool expected = false;
      for (const RefRange& r : reference) {
        expected = expected || (r.addr <= qaddr && qaddr + qsize <= r.addr + r.size);
      }
      ASSERT_EQ(table.CheckWrite(qaddr, qsize), expected)
          << "divergence at step " << step << " addr=" << qaddr << " size=" << qsize;
    }
    ASSERT_EQ(table.write_count(), reference.size()) << "range-count drift at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StraddleProperty, ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
