// Evaluation-harness tests: netperf workloads deliver what they send, the
// machine model reproduces the paper's stock rows, the API-evolution model
// hits its anchors, the annotation survey covers all ten modules, and the
// SFI microbenchmarks return sane measurements.
#include <gtest/gtest.h>

#include "src/eval/annotation_stats.h"
#include "src/eval/api_evolution.h"
#include "src/eval/netperf.h"
#include "src/lxfi/runtime.h"
#include "src/eval/sfi_micro.h"

namespace {

class NetperfWorkload : public ::testing::TestWithParam<eval::NetWorkload> {};

TEST_P(NetperfWorkload, DeliversAllPacketsStock) {
  eval::NetperfHarness harness(/*isolated=*/false);
  eval::NetperfMeasurement m = harness.Run({GetParam(), 2000});
  EXPECT_EQ(m.packets, 2000u);
  EXPECT_GT(m.path_wall_ns, 0u);
}

TEST_P(NetperfWorkload, DeliversAllPacketsIsolated) {
  eval::NetperfHarness harness(/*isolated=*/true);
  eval::NetperfMeasurement m = harness.Run({GetParam(), 2000});
  EXPECT_EQ(m.packets, 2000u);
  EXPECT_EQ(harness.runtime()->violation_count(), 0u)
      << "benign netperf traffic must not violate any contract";
}

TEST_P(NetperfWorkload, IsolationCostsMeasurableTime) {
  eval::NetperfHarness stock(/*isolated=*/false);
  eval::NetperfHarness isolated(/*isolated=*/true);
  stock.Run({GetParam(), 1000});
  isolated.Run({GetParam(), 1000});
  eval::NetperfMeasurement ms = stock.Run({GetParam(), 4000});
  eval::NetperfMeasurement ml = isolated.Run({GetParam(), 4000});
  EXPECT_GT(ml.PathNsPerPacket(), ms.PathNsPerPacket())
      << "wrappers and checks are not free";
}

INSTANTIATE_TEST_SUITE_P(All, NetperfWorkload,
                         ::testing::Values(eval::NetWorkload::kUdpStreamTx,
                                           eval::NetWorkload::kUdpStreamRx,
                                           eval::NetWorkload::kTcpStreamTx,
                                           eval::NetWorkload::kTcpStreamRx,
                                           eval::NetWorkload::kTcpRr,
                                           eval::NetWorkload::kUdpRr),
                         [](const ::testing::TestParamInfo<eval::NetWorkload>& info) {
                           std::string n = eval::NetWorkloadName(info.param);
                           for (char& c : n) {
                             if (c == ' ') {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(MachineModel, StockRowsMatchPaper) {
  // Equal measurements (zero delta) must reproduce Figure 12's stock column.
  eval::NetperfMeasurement same;
  same.packets = 1000;
  same.path_wall_ns = 1000 * 500;
  auto row = eval::ComputeRow(eval::NetWorkload::kTcpStreamTx, false, same, same);
  EXPECT_NEAR(row.stock_throughput, 836.0, 1.0);
  EXPECT_NEAR(row.stock_cpu_pct, 13.0, 0.5);
  row = eval::ComputeRow(eval::NetWorkload::kUdpStreamTx, false, same, same);
  EXPECT_NEAR(row.stock_throughput, 3.1, 0.05);
  EXPECT_NEAR(row.stock_cpu_pct, 54.0, 1.0);
  row = eval::ComputeRow(eval::NetWorkload::kTcpRr, false, same, same);
  EXPECT_NEAR(row.stock_throughput, 9400.0, 50.0);
  row = eval::ComputeRow(eval::NetWorkload::kUdpRr, true, same, same);
  EXPECT_NEAR(row.stock_throughput, 20000.0, 200.0);
}

TEST(MachineModel, OverheadReducesUdpThroughputNotTcp) {
  eval::NetperfMeasurement stock;
  stock.packets = 1000;
  stock.path_wall_ns = 1000 * 200;
  eval::NetperfMeasurement lxfi;
  lxfi.packets = 1000;
  lxfi.path_wall_ns = 1000 * 500;  // +300ns/packet of enforcement
  auto tcp = eval::ComputeRow(eval::NetWorkload::kTcpStreamTx, false, stock, lxfi);
  EXPECT_DOUBLE_EQ(tcp.lxfi_throughput, tcp.stock_throughput) << "TCP stays link-limited";
  EXPECT_GT(tcp.lxfi_cpu_pct, tcp.stock_cpu_pct);
  auto udp = eval::ComputeRow(eval::NetWorkload::kUdpStreamTx, false, stock, lxfi);
  EXPECT_LT(udp.lxfi_throughput, udp.stock_throughput) << "UDP TX hits the CPU wall";
  EXPECT_NEAR(udp.lxfi_cpu_pct, 100.0, 0.5);
}

TEST(MachineModel, OneSwitchMagnifiesRelativeRrGap) {
  eval::NetperfMeasurement stock;
  stock.packets = 1000;
  stock.path_wall_ns = 1000 * 200;
  eval::NetperfMeasurement lxfi;
  lxfi.packets = 1000;
  lxfi.path_wall_ns = 1000 * 3000;
  auto multi = eval::ComputeRow(eval::NetWorkload::kUdpRr, false, stock, lxfi);
  auto onesw = eval::ComputeRow(eval::NetWorkload::kUdpRr, true, stock, lxfi);
  double drop_multi = 1.0 - multi.lxfi_throughput / multi.stock_throughput;
  double drop_onesw = 1.0 - onesw.lxfi_throughput / onesw.stock_throughput;
  EXPECT_GT(drop_onesw, drop_multi)
      << "with less network latency to hide behind, enforcement shows more";
}

TEST(ApiEvolution, DeterministicAndAnchored) {
  auto a = eval::RunApiEvolutionModel(2611);
  auto b = eval::RunApiEvolutionModel(2611);
  ASSERT_EQ(a.size(), 19u);  // 2.6.21 .. 2.6.39
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].exported_total, b[i].exported_total);
  }
  EXPECT_EQ(a.front().version, "2.6.21");
  EXPECT_EQ(a.front().exported_total, 5583u);
  EXPECT_EQ(a.front().exported_churn, 272u);
  EXPECT_EQ(a.front().fnptr_total, 3725u);
  EXPECT_EQ(a.front().fnptr_churn, 183u);
  EXPECT_EQ(a.back().version, "2.6.39");
}

TEST(ApiEvolution, GrowsSteadilyWithModestChurn) {
  auto stats = eval::RunApiEvolutionModel();
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_GT(stats[i].exported_total, stats[i - 1].exported_total);
    EXPECT_GT(stats[i].fnptr_total, stats[i - 1].fnptr_total);
  }
  // Endpoint calibration: ~9.5k exported functions by 2.6.39 (±15%).
  EXPECT_GT(stats.back().exported_total, 8000u);
  EXPECT_LT(stats.back().exported_total, 11000u);
  // Churn stays a small fraction of the total.
  EXPECT_LT(eval::MeanChurnFraction(stats, false), 0.10);
  EXPECT_LT(eval::MeanChurnFraction(stats, true), 0.10);
}

TEST(AnnotationSurvey, CoversAllTenModules) {
  eval::AnnotationSurvey survey = eval::RunAnnotationSurvey();
  ASSERT_EQ(survey.modules.size(), 10u);
  for (const auto& m : survey.modules) {
    EXPECT_GT(m.functions_all, 0u) << m.module;
    EXPECT_GT(m.fnptrs_all, 0u) << m.module;
    EXPECT_LE(m.functions_unique, m.functions_all) << m.module;
    EXPECT_LE(m.fnptrs_unique, m.fnptrs_all) << m.module;
  }
  EXPECT_GT(survey.capability_iterators, 0u);
}

TEST(AnnotationSurvey, SharingDominates) {
  // The paper's point: most annotations are shared between modules, so the
  // marginal cost of a new module is small. Sum of uniques must be well
  // under the sum of alls.
  eval::AnnotationSurvey survey = eval::RunAnnotationSurvey();
  uint64_t all = 0, unique = 0;
  for (const auto& m : survey.modules) {
    all += m.functions_all + m.fnptrs_all;
    unique += m.functions_unique + m.fnptrs_unique;
  }
  EXPECT_LT(unique * 2, all) << "shared annotations must dominate";
}

TEST(AnnotationSurvey, SecondSoundDriverIsFree) {
  // snd-ens1370 arrives after snd-intel8x0 annotated everything it needs.
  eval::AnnotationSurvey survey = eval::RunAnnotationSurvey();
  for (const auto& m : survey.modules) {
    if (m.module == "snd-ens1370") {
      EXPECT_EQ(m.functions_unique, 0u);
      EXPECT_EQ(m.fnptrs_unique, 0u);
    }
  }
}

TEST(SfiMicro, MeasurementsAreSane) {
  eval::MicroResult hotlist = eval::RunHotlist();
  EXPECT_GT(hotlist.base_ns, 0.0);
  EXPECT_GT(hotlist.instrumented_ns, 0.0);
  // hotlist adds one guard per O(n) search: within noise of zero.
  EXPECT_LT(hotlist.SlowdownPct(), 10.0);

  // The memo-hot store guard now costs ~1% on this workload — below the
  // base run's own ±1.5% wall-clock noise — so the lower bound can only be
  // a noise bound, not a "guards must cost something" bound.
  eval::MicroResult lld = eval::RunLld();
  EXPECT_GT(lld.SlowdownPct(), -3.0);
  EXPECT_LT(lld.SlowdownPct(), 60.0);

  eval::MicroResult md5 = eval::RunMd5();
  EXPECT_LT(md5.SlowdownPct(), 8.0) << "hoisted checks amortize to ~nothing";
}

}  // namespace
