// Stacked device-mapper targets: crypt-over-snapshot and snapshot-over-crypt
// through nested indirect map dispatches, with both modules isolated — the
// integration test for deep kernel/module/kernel/module call chains.
#include <gtest/gtest.h>

#include <cstring>

#include "src/kernel/block/block.h"
#include "src/kernel/kernel.h"
#include "src/lxfi/runtime.h"
#include "src/modules/dm/dm_modules.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

class DmStackingTest : public ::testing::TestWithParam<bool> {
 protected:
  DmStackingTest() : bench_(GetParam()) {
    block_ = kern::GetBlockLayer(bench_.kernel.get());
    disk_ = block_->CreateRamDisk("disk0", 128);
    cow_ = block_->CreateRamDisk("cowdev0", 128);
    EXPECT_NE(bench_.kernel->LoadModule(mods::DmCryptModuleDef()), nullptr);
    EXPECT_NE(bench_.kernel->LoadModule(mods::DmSnapshotModuleDef()), nullptr);
    EXPECT_NE(bench_.kernel->LoadModule(mods::DmZeroModuleDef()), nullptr);
  }

  int Io(kern::BlockDevice* dev, uint64_t sector, uint8_t* buf, uint32_t size, bool write) {
    kern::Bio bio;
    bio.sector = sector;
    bio.size = size;
    bio.data = buf;
    bio.write = write;
    return block_->SubmitBio(dev, &bio);
  }

  Bench bench_;
  kern::BlockLayer* block_ = nullptr;
  kern::BlockDevice* disk_ = nullptr;
  kern::BlockDevice* cow_ = nullptr;
};

TEST_P(DmStackingTest, SnapshotOverCrypt) {
  // disk <- crypt <- snapshot: writes through the snapshot are copy-on-write
  // protected AND encrypted at rest.
  kern::BlockDevice* crypt = block_->DmCreate("crypt0", "crypt", disk_, "k");
  ASSERT_NE(crypt, nullptr);
  // Seed the encrypted device with known plaintext.
  uint8_t seed[512];
  std::memset(seed, 0x11, sizeof(seed));
  ASSERT_EQ(Io(crypt, 0, seed, sizeof(seed), true), 0);

  kern::BlockDevice* snap = block_->DmCreate("snap0", "snapshot", crypt, "cowdev0");
  ASSERT_NE(snap, nullptr);

  uint8_t update[512];
  std::memset(update, 0x22, sizeof(update));
  ASSERT_EQ(Io(snap, 0, update, sizeof(update), true), 0);

  // The COW device preserved the *plaintext* view of chunk 0 (the snapshot
  // reads through the crypt target).
  uint8_t cow_data[512];
  ASSERT_EQ(Io(cow_, 0, cow_data, sizeof(cow_data), false), 0);
  EXPECT_EQ(cow_data[0], 0x11);
  // The new data reads back through the stack.
  uint8_t back[512] = {};
  ASSERT_EQ(Io(snap, 0, back, sizeof(back), false), 0);
  EXPECT_EQ(back[0], 0x22);
  // At rest it is ciphertext.
  uint8_t raw[512];
  ASSERT_EQ(Io(disk_, 0, raw, sizeof(raw), false), 0);
  EXPECT_NE(raw[0], 0x22);
}

TEST_P(DmStackingTest, CryptOverZeroReadsDecryptedZeros) {
  kern::BlockDevice* zero = block_->DmCreate("zero0", "zero", disk_, "");
  kern::BlockDevice* crypt = block_->DmCreate("cz", "crypt", zero, "k2");
  ASSERT_NE(crypt, nullptr);
  // Reading through crypt-over-zero returns the XOR keystream applied to
  // zeros — deterministic but not all-zero; mostly this must not violate,
  // crash or mis-route.
  uint8_t buf[512];
  ASSERT_EQ(Io(crypt, 4, buf, sizeof(buf), false), 0);
  uint8_t buf2[512];
  ASSERT_EQ(Io(crypt, 4, buf2, sizeof(buf2), false), 0);
  EXPECT_EQ(std::memcmp(buf, buf2, sizeof(buf)), 0) << "deterministic stack";
}

TEST_P(DmStackingTest, NoViolationsAcrossTheWholeStack) {
  kern::BlockDevice* crypt = block_->DmCreate("crypt0", "crypt", disk_, "k");
  kern::BlockDevice* snap = block_->DmCreate("snap0", "snapshot", crypt, "cowdev0");
  ASSERT_NE(snap, nullptr);
  uint8_t buf[1024];
  for (int i = 0; i < 16; ++i) {
    std::memset(buf, i, sizeof(buf));
    ASSERT_EQ(Io(snap, static_cast<uint64_t>(i) * 2, buf, sizeof(buf), true), 0);
    ASSERT_EQ(Io(snap, static_cast<uint64_t>(i) * 2, buf, sizeof(buf), false), 0);
    EXPECT_EQ(buf[5], i);
  }
  if (GetParam()) {
    EXPECT_EQ(bench_.rt->violation_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(StockAndLxfi, DmStackingTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lxfi" : "Stock";
                         });

TEST(DmStackingPrincipals, EachLayerIsItsOwnPrincipalInItsOwnModule) {
  Bench bench(/*isolated=*/true);
  kern::BlockLayer* block = kern::GetBlockLayer(bench.kernel.get());
  kern::BlockDevice* disk = block->CreateRamDisk("disk0", 64);
  block->CreateRamDisk("cowdev0", 64);
  kern::Module* crypt_mod = bench.kernel->LoadModule(mods::DmCryptModuleDef());
  kern::Module* snap_mod = bench.kernel->LoadModule(mods::DmSnapshotModuleDef());
  kern::BlockDevice* crypt = block->DmCreate("c", "crypt", disk, "k");
  kern::BlockDevice* snap = block->DmCreate("s", "snapshot", crypt, "cowdev0");
  ASSERT_NE(snap, nullptr);

  lxfi::Principal* pc = bench.rt->CtxOf(crypt_mod)
                            ->Lookup(reinterpret_cast<uintptr_t>(block->TargetOf(crypt)));
  lxfi::Principal* ps = bench.rt->CtxOf(snap_mod)
                            ->Lookup(reinterpret_cast<uintptr_t>(block->TargetOf(snap)));
  ASSERT_NE(pc, nullptr);
  ASSERT_NE(ps, nullptr);
  EXPECT_NE(pc->module(), ps->module());
  // The snapshot layer holds a REF for the crypt device it sits on, but the
  // crypt layer holds nothing for the snapshot's COW device.
  EXPECT_TRUE(bench.rt->Owns(ps, lxfi::Capability::Ref("block_device", crypt)));
  EXPECT_FALSE(bench.rt->Owns(pc, lxfi::Capability::Ref("block_device",
                                                        block->FindDevice("cowdev0"))));
}

}  // namespace
