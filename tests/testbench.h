// Shared test fixture pieces: a simulated kernel in stock or LXFI-isolated
// configuration with the annotated kernel API installed.
#pragma once

#include <memory>

#include "src/kernel/kernel.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/runtime.h"

namespace lxfitest {

struct Bench {
  explicit Bench(bool isolated, lxfi::RuntimeOptions options = {}) {
    kernel = std::make_unique<kern::Kernel>();
    if (isolated) {
      rt = std::make_unique<lxfi::Runtime>(kernel.get(), options);
    }
    lxfi::InstallKernelApi(kernel.get(), rt.get());
    user_task = kernel->procs().CreateTask(1000);
    kernel->SetCurrentTask(user_task);
  }

  std::unique_ptr<kern::Kernel> kernel;
  std::unique_ptr<lxfi::Runtime> rt;
  kern::Task* user_task = nullptr;
};

}  // namespace lxfitest
