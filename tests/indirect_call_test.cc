// Kernel-side indirect-call checks (§4.1): writer-set fast path, CALL
// capability validation, and annotation-hash matching.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/mem.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"
#include "tests/testbench.h"

namespace {

using lxfitest::Bench;

// A module exposing two functions with different fn-ptr types, plus a
// writable slot in its .data the kernel will indirect-call through.
struct SlotState {
  kern::Module* m = nullptr;
};

struct SlotData {
  uintptr_t handler = 0;  // declared type: proto_ops::ioctl
};

kern::ModuleDef SlotModuleDef(std::shared_ptr<SlotState> st) {
  kern::ModuleDef def;
  def.name = "slotmod";
  def.data_size = sizeof(SlotData);
  def.imports = {"printk"};
  def.functions = {
      lxfi::DeclareFunction<int, kern::Socket*, unsigned, uintptr_t>(
          "good_ioctl", "proto_ops::ioctl",
          [](kern::Socket*, unsigned, uintptr_t) { return 123; }),
      lxfi::DeclareFunction<int, kern::Socket*>("release_fn", "proto_ops::release",
                                                [](kern::Socket*) { return 0; }),
  };
  def.init = [st](kern::Module& m) -> int {
    st->m = &m;
    auto* data = static_cast<SlotData*>(m.data());
    lxfi::Store(m, &data->handler, m.FuncAddr("good_ioctl"));
    return 0;
  };
  return def;
}

class IndirectCallTest : public ::testing::Test {
 protected:
  IndirectCallTest() : bench_(/*isolated=*/true), st_(std::make_shared<SlotState>()) {
    module_ = bench_.kernel->LoadModule(SlotModuleDef(st_));
    EXPECT_NE(module_, nullptr);
    data_ = static_cast<SlotData*>(module_->data());
  }

  int CallThroughSlot() {
    return bench_.kernel->IndirectCall<int, kern::Socket*, unsigned, uintptr_t>(
        &data_->handler, "proto_ops::ioctl", nullptr, 0u, uintptr_t{0});
  }

  Bench bench_;
  std::shared_ptr<SlotState> st_;
  kern::Module* module_ = nullptr;
  SlotData* data_ = nullptr;
};

TEST_F(IndirectCallTest, LegitimateModuleFunctionDispatches) {
  EXPECT_EQ(CallThroughSlot(), 123);
}

TEST_F(IndirectCallTest, ModuleWrittenSlotTakesFullCheck) {
  uint64_t full_before = bench_.rt->guards().count(lxfi::GuardType::kIndCallFull);
  CallThroughSlot();
  EXPECT_GT(bench_.rt->guards().count(lxfi::GuardType::kIndCallFull), full_before)
      << "slot lives in module .data: writer set is non-empty";
}

TEST_F(IndirectCallTest, KernelOwnedSlotTakesFastPath) {
  // A kernel-heap slot never granted to any module.
  auto slot = std::make_unique<uintptr_t>(
      bench_.kernel->funcs().Register<void()>(kern::TextKind::kKernelText, "kfn", [] {}));
  uint64_t full_before = bench_.rt->guards().count(lxfi::GuardType::kIndCallFull);
  bench_.kernel->IndirectCall<void>(slot.get(), "some_kernel_type");
  EXPECT_EQ(bench_.rt->guards().count(lxfi::GuardType::kIndCallFull), full_before);
}

TEST_F(IndirectCallTest, UserSpaceTargetBlocked) {
  uintptr_t payload = bench_.kernel->funcs().Register<int(kern::Socket*, unsigned, uintptr_t)>(
      kern::TextKind::kUserText, "payload",
      [](kern::Socket*, unsigned, uintptr_t) { return -1; });
  data_->handler = payload;  // simulate a corrupting write
  EXPECT_THROW(CallThroughSlot(), lxfi::LxfiViolation);
}

TEST_F(IndirectCallTest, NullTargetBlocked) {
  data_->handler = 0;
  EXPECT_THROW(CallThroughSlot(), lxfi::LxfiViolation);
}

TEST_F(IndirectCallTest, KernelFunctionModuleCannotCallBlocked) {
  // detach_pid is exported (and annotated) but not imported by slotmod, so
  // the module holds no CALL capability for it.
  data_->handler = bench_.kernel->symtab().Find("detach_pid");
  EXPECT_THROW(CallThroughSlot(), lxfi::LxfiViolation);
}

TEST_F(IndirectCallTest, AnnotationHashMismatchBlocked) {
  // release_fn is the module's own code (CALL capability exists!) but its
  // annotations are proto_ops::release, not proto_ops::ioctl: a module must
  // not launder a function through a pointer of a different type.
  data_->handler = module_->FuncAddr("release_fn");
  try {
    CallThroughSlot();
    FAIL() << "expected a violation";
  } catch (const lxfi::LxfiViolation& v) {
    EXPECT_EQ(v.kind(), lxfi::ViolationKind::kAnnotationMismatch);
  }
}

TEST_F(IndirectCallTest, MatchingTypeThroughDifferentSlotStillWorks) {
  // Same declared type, stored into a second slot: fine.
  auto* slot2 = static_cast<uintptr_t*>(bench_.kernel->slab().Alloc(sizeof(uintptr_t)));
  // Simulate the module writing it (grant + write).
  bench_.rt->Grant(bench_.rt->CtxOf(module_)->shared(),
                   lxfi::Capability::Write(slot2, sizeof(uintptr_t)));
  *slot2 = module_->FuncAddr("good_ioctl");
  int rc = bench_.kernel->IndirectCall<int, kern::Socket*, unsigned, uintptr_t>(
      slot2, "proto_ops::ioctl", nullptr, 0u, uintptr_t{0});
  EXPECT_EQ(rc, 123);
}

TEST_F(IndirectCallTest, WriterSetDisabledStillCatchesCorruption) {
  bench_.rt->options().writer_set_tracking = false;
  uintptr_t payload = bench_.kernel->funcs().Register<int(kern::Socket*, unsigned, uintptr_t)>(
      kern::TextKind::kUserText, "payload2",
      [](kern::Socket*, unsigned, uintptr_t) { return -1; });
  data_->handler = payload;
  EXPECT_THROW(CallThroughSlot(), lxfi::LxfiViolation);
}

TEST_F(IndirectCallTest, StockKernelRunsAnything) {
  Bench stock(/*isolated=*/false);
  auto st = std::make_shared<SlotState>();
  kern::Module* m = stock.kernel->LoadModule(SlotModuleDef(st));
  ASSERT_NE(m, nullptr);
  auto* data = static_cast<SlotData*>(m->data());
  data->handler = stock.kernel->funcs().Register<int(kern::Socket*, unsigned, uintptr_t)>(
      kern::TextKind::kUserText, "stock_payload",
      [](kern::Socket*, unsigned, uintptr_t) { return 777; });
  int rc = stock.kernel->IndirectCall<int, kern::Socket*, unsigned, uintptr_t>(
      &data->handler, "proto_ops::ioctl", nullptr, 0u, uintptr_t{0});
  EXPECT_EQ(rc, 777) << "no isolation: the corrupted pointer runs";
}

}  // namespace
