// Runtime monitor tests: capability flows through wrappers, principals,
// shadow stacks, violations (§4, §5).
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/mem.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"
#include "tests/testbench.h"

namespace {

using lxfi::Capability;
using lxfitest::Bench;

// A configurable scratch module for driving runtime behavior from tests.
struct ScratchState {
  kern::Module* m = nullptr;
  std::function<void*(size_t)> kmalloc;
  std::function<void(void*)> kfree;
  std::function<void(uintptr_t*)> spin_lock_init;
};

kern::ModuleDef ScratchDef(std::shared_ptr<ScratchState> st, const char* name = "scratch") {
  kern::ModuleDef def;
  def.name = name;
  def.data_size = 128;
  def.imports = {"kmalloc", "kfree", "spin_lock_init", "printk"};
  def.init = [st](kern::Module& m) -> int {
    st->m = &m;
    st->kmalloc = lxfi::GetImport<void*, size_t>(m, "kmalloc");
    st->kfree = lxfi::GetImport<void, void*>(m, "kfree");
    st->spin_lock_init = lxfi::GetImport<void, uintptr_t*>(m, "spin_lock_init");
    return 0;
  };
  return def;
}

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : bench_(/*isolated=*/true), st_(std::make_shared<ScratchState>()) {
    module_ = bench_.kernel->LoadModule(ScratchDef(st_));
    EXPECT_NE(module_, nullptr);
  }

  lxfi::Runtime& rt() { return *bench_.rt; }
  lxfi::ModuleCtx* ctx() { return rt().CtxOf(module_); }

  Bench bench_;
  std::shared_ptr<ScratchState> st_;
  kern::Module* module_ = nullptr;
};

TEST_F(RuntimeTest, InitialCapsCoverImportsAndSections) {
  lxfi::Principal* shared = ctx()->shared();
  uintptr_t kmalloc_addr = bench_.kernel->symtab().Find("kmalloc");
  EXPECT_TRUE(rt().Owns(shared, Capability::Call(kmalloc_addr)));
  EXPECT_TRUE(rt().Owns(shared, Capability::Write(module_->data(), module_->data_size())));
  // Not imported -> no CALL capability.
  uintptr_t detach = bench_.kernel->symtab().Find("detach_pid");
  EXPECT_FALSE(rt().Owns(shared, Capability::Call(detach)));
}

TEST_F(RuntimeTest, KmallocGrantsWriteAndKfreeRevokesEverywhere) {
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  void* p = st_->kmalloc(96);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(rt().Owns(ctx()->shared(), Capability::Write(p, 96)));
  // Transfer semantics on kfree: nobody keeps the capability.
  st_->kfree(p);
  EXPECT_FALSE(rt().Owns(ctx()->shared(), Capability::Write(p, 1)));
  EXPECT_FALSE(rt().Owns(ctx()->global(), Capability::Write(p, 1)));
}

TEST_F(RuntimeTest, ModuleCannotFreeMemoryItDoesNotOwn) {
  // Kernel-side allocation the module never got a capability for.
  void* kernel_obj = bench_.kernel->slab().Alloc(64);
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  EXPECT_THROW(st_->kfree(kernel_obj), lxfi::LxfiViolation);
}

TEST_F(RuntimeTest, CheckedStoreInsideOwnAllocationSucceeds) {
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  auto* p = static_cast<uint64_t*>(st_->kmalloc(64));
  lxfi::Store(*module_, p, uint64_t{42});
  EXPECT_EQ(*p, 42u);
}

TEST_F(RuntimeTest, CheckedStoreOutsideOwnershipViolates) {
  // A kernel-heap object (stack locals are module-writable per §3.2's
  // kernel-stack grant, so the victim must live elsewhere).
  auto* kernel_value = static_cast<uint64_t*>(bench_.kernel->slab().Alloc(sizeof(uint64_t)));
  *kernel_value = 7;
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  EXPECT_THROW(lxfi::Store(*module_, kernel_value, uint64_t{0}), lxfi::LxfiViolation);
  EXPECT_EQ(*kernel_value, 7u) << "the store must not land";
  EXPECT_GE(rt().violation_count(), 1u);
  EXPECT_EQ(rt().violations().back().kind, lxfi::ViolationKind::kWrite);
}

TEST_F(RuntimeTest, KernelStackIsModuleWritable) {
  // §3.2 initial capability (2): the current kernel stack.
  uint64_t local = 1;
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  lxfi::Store(*module_, &local, uint64_t{2});
  EXPECT_EQ(local, 2u);
}

TEST_F(RuntimeTest, SpinLockInitContractEnforced) {
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  auto* own = static_cast<uintptr_t*>(st_->kmalloc(sizeof(uintptr_t)));
  st_->spin_lock_init(own);  // fine: module owns it
  auto* kernel_word = static_cast<uintptr_t*>(bench_.kernel->slab().Alloc(sizeof(uintptr_t)));
  *kernel_word = 0x1111;
  EXPECT_THROW(st_->spin_lock_init(kernel_word), lxfi::LxfiViolation);
  EXPECT_EQ(*kernel_word, 0x1111u);
}

TEST_F(RuntimeTest, UndeclaredImportIsRejected) {
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  EXPECT_THROW((lxfi::GetImport<void, kern::Task*>(*module_, "detach_pid")),
               lxfi::LxfiViolation);
}

TEST_F(RuntimeTest, TrustedContextBypassesModuleChecks) {
  // No current principal: the import runs as plain kernel code.
  void* p = st_->kmalloc(32);
  EXPECT_NE(p, nullptr);
  // No capability was granted to the module for it.
  EXPECT_FALSE(rt().Owns(ctx()->shared(), Capability::Write(p, 1)));
}

TEST_F(RuntimeTest, PrincipalAliasGivesSecondName) {
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  auto* obj_a = static_cast<uint64_t*>(st_->kmalloc(8));
  auto* obj_b = static_cast<uint64_t*>(st_->kmalloc(8));
  lxfi::Principal* inst = ctx()->GetOrCreate(reinterpret_cast<uintptr_t>(obj_a));
  {
    lxfi::ScopedPrincipal as_instance(&rt(), inst);
    rt().PrincAlias(obj_a, obj_b);
  }
  EXPECT_EQ(ctx()->Lookup(reinterpret_cast<uintptr_t>(obj_b)), inst);
}

TEST_F(RuntimeTest, AliasOfUnknownNameViolates) {
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  int x, y;
  EXPECT_THROW(rt().PrincAlias(&x, &y), lxfi::LxfiViolation);
}

TEST_F(RuntimeTest, CrossModulePrincipalSwitchViolates) {
  auto st2 = std::make_shared<ScratchState>();
  kern::Module* other = bench_.kernel->LoadModule(ScratchDef(st2, "scratch2"));
  ASSERT_NE(other, nullptr);
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  EXPECT_THROW(rt().SwitchPrincipal(rt().CtxOf(other)->shared()), lxfi::LxfiViolation);
}

TEST_F(RuntimeTest, SharedCapsVisibleToInstances) {
  lxfi::Principal* inst = ctx()->GetOrCreate(0x1234);
  uintptr_t kmalloc_addr = bench_.kernel->symtab().Find("kmalloc");
  // CALL caps live in the shared principal but every instance can use them.
  EXPECT_TRUE(rt().Owns(inst, Capability::Call(kmalloc_addr)));
}

TEST_F(RuntimeTest, GlobalPrincipalSeesInstanceCaps) {
  // An address far outside both the module's sections and the user window.
  constexpr uintptr_t kAddr = 0x7000dead0000ull;
  lxfi::Principal* inst = ctx()->GetOrCreate(0x1234);
  rt().Grant(inst, Capability::Write(kAddr, 64));
  EXPECT_TRUE(rt().Owns(ctx()->global(), Capability::Write(kAddr, 64)));
  // But a sibling instance does not.
  lxfi::Principal* other = ctx()->GetOrCreate(0x5678);
  EXPECT_FALSE(rt().Owns(other, Capability::Write(kAddr, 64)));
}

TEST_F(RuntimeTest, InstanceCapsIsolatedFromEachOther) {
  lxfi::Principal* a = ctx()->GetOrCreate(0x1000);
  lxfi::Principal* b = ctx()->GetOrCreate(0x2000);
  rt().Grant(a, Capability::Ref(lxfi::RefType("socket"), 0xa));
  EXPECT_TRUE(rt().Owns(a, Capability::Ref(lxfi::RefType("socket"), 0xa)));
  EXPECT_FALSE(rt().Owns(b, Capability::Ref(lxfi::RefType("socket"), 0xa)));
}

TEST_F(RuntimeTest, ShadowStackCorruptionIsFatal) {
  lxfi::ShadowStack* shadow = rt().CurrentShadow();
  uint64_t token = rt().WrapperEnter(ctx()->shared(), "victim");
  shadow->CorruptTopForTest();
  EXPECT_THROW(rt().WrapperExit(token, "victim"), lxfi::LxfiViolation);
}

TEST_F(RuntimeTest, InterruptSavesAndRestoresPrincipal) {
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  EXPECT_EQ(rt().CurrentPrincipal(), ctx()->shared());
  bench_.kernel->DeliverInterrupt([&] {
    // Interrupt context runs with kernel privilege until a wrapper switches.
    EXPECT_EQ(rt().CurrentPrincipal(), nullptr);
  });
  EXPECT_EQ(rt().CurrentPrincipal(), ctx()->shared());
}

TEST_F(RuntimeTest, NestedInterrupts) {
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  bench_.kernel->DeliverInterrupt([&] {
    bench_.kernel->DeliverInterrupt([&] { EXPECT_EQ(rt().CurrentPrincipal(), nullptr); });
    EXPECT_EQ(rt().CurrentPrincipal(), nullptr);
  });
  EXPECT_EQ(rt().CurrentPrincipal(), ctx()->shared());
}

TEST_F(RuntimeTest, LxfiCheckPassesAndFails) {
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  auto* p = st_->kmalloc(16);
  rt().LxfiCheck(Capability::Write(p, 16));  // no throw
  EXPECT_THROW(rt().LxfiCheck(Capability::Ref(lxfi::RefType("pci_dev"), 0x42)),
               lxfi::LxfiViolation);
}

TEST_F(RuntimeTest, ViolationPolicyCount) {
  rt().options().policy = lxfi::ViolationPolicy::kCount;
  auto* v = static_cast<uint64_t*>(bench_.kernel->slab().Alloc(sizeof(uint64_t)));
  *v = 1;
  lxfi::ScopedPrincipal as_module(&rt(), ctx()->shared());
  lxfi::Store(*module_, v, uint64_t{2});  // violation recorded, store proceeds
  EXPECT_GE(rt().violation_count(), 1u);
  EXPECT_EQ(*v, 2u);
  rt().options().policy = lxfi::ViolationPolicy::kThrow;
}

TEST_F(RuntimeTest, ModuleUnloadDropsDispatchAndContext) {
  bench_.kernel->UnloadModule(module_);
  EXPECT_EQ(module_->lxfi_ctx, nullptr);
  EXPECT_EQ(rt().CtxOf(module_), nullptr);
}

TEST(RuntimeLoad, RejectsUnknownImport) {
  Bench bench(/*isolated=*/true);
  kern::ModuleDef def;
  def.name = "bad";
  def.imports = {"nonexistent_symbol"};
  EXPECT_EQ(bench.kernel->LoadModule(std::move(def)), nullptr);
}

TEST(RuntimeLoad, RejectsUnannotatedImportSafeDefault) {
  Bench bench(/*isolated=*/true);
  // Export a symbol with NO annotations: §2.2's safe default means a module
  // importing it must be refused.
  bench.kernel->ExportSymbol<void()>("mystery_fn", [] {});
  kern::ModuleDef def;
  def.name = "bad";
  def.imports = {"mystery_fn"};
  EXPECT_EQ(bench.kernel->LoadModule(std::move(def)), nullptr);
}

TEST(RuntimeLoad, StockKernelAcceptsAnything) {
  Bench bench(/*isolated=*/false);
  bench.kernel->ExportSymbol<void()>("mystery_fn", [] {});
  kern::ModuleDef def;
  def.name = "anything";
  def.imports = {"mystery_fn"};
  EXPECT_NE(bench.kernel->LoadModule(std::move(def)), nullptr);
}

TEST(RuntimeLoad, ConflictingAnnotationPropagationRejected) {
  Bench bench(/*isolated=*/true);
  // Function registered with annotations that differ from its declared
  // function-pointer type: the multi-source consistency check must fire.
  ASSERT_TRUE(bench.rt->annotations()
                  .Register("conflicted_fn", {"x"}, "pre(check(write, x, 8))")
                  .ok());
  kern::ModuleDef def;
  def.name = "conflicted";
  def.functions = {lxfi::DeclareFunction<int, kern::Socket*>(
      "conflicted_fn", "proto_ops::release", [](kern::Socket*) { return 0; })};
  EXPECT_EQ(bench.kernel->LoadModule(std::move(def)), nullptr);
}

}  // namespace
