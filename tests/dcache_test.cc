// RCU-walk dcache: differential test against a naive locked reference
// model (including forced hash collisions, so the strcmp fallback chain is
// really exercised), and a concurrent storm — CPUs walking one directory
// while writers create/unlink/instantiate in it — that proves the seqlock
// retry path fires and that stable entries never flicker. The storm runs
// under TSan in CI.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/kernel/fs/dcache.h"
#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/kernel/smp.h"

namespace {

struct Model {
  // name -> positive?
  std::map<std::string, bool> entries;
  uint32_t pos = 0;
  uint32_t neg = 0;
};

class DcacheDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DcacheDifferential, RandomOpsMatchNaiveModel) {
  kern::Kernel kernel;
  kern::Dcache dc(&kernel);
  dc.set_hash_buckets_for_test(GetParam());  // 0 = full FNV; 4 = four keys

  kern::Dentry* parent = dc.NewDentry(nullptr, nullptr, "root");
  kern::Inode dir_inode;
  dir_inode.mode = kern::kIfDir;
  kern::Dcache::SetPositive(parent, &dir_inode);

  kern::Inode file_inode;
  file_inode.mode = kern::kIfReg;

  Model model;
  // A small name pool makes collisions (under the mask) and repeats likely.
  std::vector<std::string> pool;
  for (int i = 0; i < 48; ++i) {
    pool.push_back("n" + std::to_string(i * 7919 % 97));
  }
  lxfi::Rng rng(0xDCACE + GetParam());

  for (int step = 0; step < 4000; ++step) {
    const std::string& name = pool[rng.Next() % pool.size()];
    auto it = model.entries.find(name);
    switch (rng.Next() % 4) {
      case 0:    // link (positive or negative)
      case 1: {
        if (it != model.entries.end()) {
          break;  // occupied: the VFS never double-links a name
        }
        bool positive = (rng.Next() & 1) != 0;
        kern::Dentry* d = dc.NewDentry(nullptr, parent, name.c_str());
        if (positive) {
          kern::Dcache::SetPositive(d, &file_inode);
        }
        lxfi::SpinGuard guard(dc.writer_lock(parent));
        ASSERT_EQ(dc.FindChildLocked(parent, name.c_str()), nullptr);
        dc.LinkChildLocked(parent, d);
        model.entries[name] = positive;
        (positive ? model.pos : model.neg) += 1;
        break;
      }
      case 2: {  // unlink
        if (it == model.entries.end()) {
          break;
        }
        kern::Dentry* d;
        {
          lxfi::SpinGuard guard(dc.writer_lock(parent));
          d = dc.FindChildLocked(parent, name.c_str());
          ASSERT_NE(d, nullptr);
          dc.UnlinkChildLocked(parent, d);
        }
        // Alternate reclamation flavors; no concurrent reader exists.
        if ((rng.Next() & 1) != 0) {
          dc.Retire(d);
        } else {
          dc.FreeNow(d);
        }
        (it->second ? model.pos : model.neg) -= 1;
        model.entries.erase(it);
        break;
      }
      default: {  // lookup, lock-free and locked, against the model
        kern::Dentry* d = dc.Lookup(parent, name);
        kern::Dentry* dl;
        {
          lxfi::SpinGuard guard(dc.writer_lock(parent));
          dl = dc.FindChildLocked(parent, name.c_str());
        }
        EXPECT_EQ(d, dl);
        if (it == model.entries.end()) {
          EXPECT_EQ(d, nullptr) << name;
        } else {
          ASSERT_NE(d, nullptr) << name;
          EXPECT_STREQ(d->name, name.c_str());
          EXPECT_EQ((kern::Dcache::FlagsOf(d) & kern::kDentryPositive) != 0, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(parent->pos_children, model.pos);
    ASSERT_EQ(parent->neg_children, model.neg);
  }

  // Every surviving entry is found by both probes; drain the tree.
  for (const auto& [name, positive] : model.entries) {
    kern::Dentry* d = dc.Lookup(parent, name);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ((kern::Dcache::FlagsOf(d) & kern::kDentryPositive) != 0, positive);
  }
  dc.FreeTreeNow(parent);
  lxfi::EpochReclaimer::Global().Synchronize();
}

INSTANTIATE_TEST_SUITE_P(FullHashAndForcedCollisions, DcacheDifferential,
                         ::testing::Values(uint64_t{0}, uint64_t{4}),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return info.param == 0 ? "FullHash" : "FourBuckets";
                         });

TEST(DcacheDifferential, CollidingNamesResolveByStrcmpFallback) {
  kern::Kernel kernel;
  kern::Dcache dc(&kernel);
  dc.set_hash_buckets_for_test(1);  // every name lands on one key
  kern::Dentry* parent = dc.NewDentry(nullptr, nullptr, "root");
  kern::Inode ino;
  ino.mode = kern::kIfReg;
  const char* names[] = {"alpha", "beta", "gamma", "delta"};
  for (const char* n : names) {
    kern::Dentry* d = dc.NewDentry(nullptr, parent, n);
    kern::Dcache::SetPositive(d, &ino);
    lxfi::SpinGuard guard(dc.writer_lock(parent));
    dc.LinkChildLocked(parent, d);
  }
  for (const char* n : names) {
    kern::Dentry* d = dc.Lookup(parent, n);
    ASSERT_NE(d, nullptr);
    EXPECT_STREQ(d->name, n);
  }
  EXPECT_EQ(dc.Lookup(parent, "epsilon"), nullptr);
  // Unlink from the middle of the chain; the rest stays resolvable.
  {
    kern::Dentry* d;
    {
      lxfi::SpinGuard guard(dc.writer_lock(parent));
      d = dc.FindChildLocked(parent, "beta");
      ASSERT_NE(d, nullptr);
      dc.UnlinkChildLocked(parent, d);
    }
    dc.Retire(d);
  }
  EXPECT_EQ(dc.Lookup(parent, "beta"), nullptr);
  for (const char* n : {"alpha", "gamma", "delta"}) {
    EXPECT_NE(dc.Lookup(parent, n), nullptr);
  }
  dc.FreeTreeNow(parent);
  lxfi::EpochReclaimer::Global().Synchronize();
}

// Locked (ablation) mode answers exactly like RCU mode.
TEST(DcacheLockedMode, LookupMatchesRcuMode) {
  kern::Kernel kernel;
  kern::Dcache dc(&kernel);
  kern::Dentry* parent = dc.NewDentry(nullptr, nullptr, "root");
  kern::Inode ino;
  ino.mode = kern::kIfReg;
  for (int i = 0; i < 40; ++i) {
    std::string name = "f" + std::to_string(i);
    kern::Dentry* d = dc.NewDentry(nullptr, parent, name.c_str());
    if (i % 3 != 0) {
      kern::Dcache::SetPositive(d, &ino);
    }
    lxfi::SpinGuard guard(dc.writer_lock(parent));
    dc.LinkChildLocked(parent, d);
  }
  for (int i = 0; i < 40; ++i) {
    std::string name = "f" + std::to_string(i);
    dc.set_locked_mode(false);
    kern::Dentry* rcu = dc.Lookup(parent, name);
    dc.set_locked_mode(true);
    kern::Dentry* locked = dc.Lookup(parent, name);
    EXPECT_EQ(rcu, locked);
    ASSERT_NE(rcu, nullptr);
  }
  dc.set_locked_mode(false);
  EXPECT_EQ(dc.Lookup(parent, "missing"), nullptr);
  dc.set_locked_mode(true);
  EXPECT_EQ(dc.Lookup(parent, "missing"), nullptr);
  dc.set_locked_mode(false);
  dc.FreeTreeNow(parent);
  lxfi::EpochReclaimer::Global().Synchronize();
}

// The storm: reader CPUs walk one directory's stable and absent names
// nonstop while writer CPUs create/unlink/instantiate churn names in the
// same directory (same index, same seqlock). Invariants: stable names are
// always found positive, absent names are never found, cached negatives
// stay negative — and the seqlock retry path is actually taken.
TEST(DcacheStorm, ConcurrentWalkersVsWritersAreCleanAndRetry) {
  kern::Kernel kernel;
  kern::Dcache dc(&kernel);
  kern::Dentry* parent = dc.NewDentry(nullptr, nullptr, "root");
  kern::Inode dir_inode;
  dir_inode.mode = kern::kIfDir;
  kern::Dcache::SetPositive(parent, &dir_inode);

  static constexpr int kStable = 24;
  static constexpr int kNegative = 8;
  kern::Inode stable_inode;
  stable_inode.mode = kern::kIfReg;
  for (int i = 0; i < kStable; ++i) {
    std::string name = "s" + std::to_string(i);
    kern::Dentry* d = dc.NewDentry(nullptr, parent, name.c_str());
    kern::Dcache::SetPositive(d, &stable_inode);
    lxfi::SpinGuard guard(dc.writer_lock(parent));
    dc.LinkChildLocked(parent, d);
  }
  for (int i = 0; i < kNegative; ++i) {
    std::string name = "neg" + std::to_string(i);
    kern::Dentry* d = dc.NewDentry(nullptr, parent, name.c_str());
    lxfi::SpinGuard guard(dc.writer_lock(parent));
    dc.LinkChildLocked(parent, d);
  }

  kern::CpuSet cpus(&kernel, 4);
  kern::Inode churn_inodes[2];
  churn_inodes[0].mode = kern::kIfReg;
  churn_inodes[1].mode = kern::kIfReg;

  std::atomic<uint64_t> reader_errors{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int w = 0; w < 2; ++w) {
      cpus.RunOn(w, [&dc, parent, &churn_inodes, w] {
        char name[32];
        for (int iter = 0; iter < 3000; ++iter) {
          std::snprintf(name, sizeof(name), "w%d_%d", w, iter % 97);
          kern::Dentry* d = dc.NewDentry(nullptr, parent, name);
          kern::Dcache::SetPositive(d, &churn_inodes[w]);
          {
            lxfi::SpinGuard guard(dc.writer_lock(parent));
            if (dc.FindChildLocked(parent, name) == nullptr) {
              dc.LinkChildLocked(parent, d);
              d = nullptr;
            }
          }
          if (d != nullptr) {
            dc.FreeNow(d);  // name still linked from a previous lap
          }
          if ((iter & 1) != 0) {
            std::snprintf(name, sizeof(name), "w%d_%d", w, (iter - 1) % 97);
            kern::Dentry* victim;
            {
              lxfi::SpinGuard guard(dc.writer_lock(parent));
              victim = dc.FindChildLocked(parent, name);
              if (victim != nullptr) {
                dc.UnlinkChildLocked(parent, victim);
              }
            }
            if (victim != nullptr) {
              dc.Retire(victim);
            }
          }
          if ((iter & 63) == 0) {
            kern::CpuSet::QuiescePoint();
          }
        }
        kern::CpuSet::QuiescePoint();
      });
    }
    for (int r = 2; r < 4; ++r) {
      cpus.RunOn(r, [&dc, parent, &reader_errors] {
        char name[32];
        for (int iter = 0; iter < 8000; ++iter) {
          std::snprintf(name, sizeof(name), "s%d", iter % kStable);
          kern::Dentry* d = dc.Lookup(parent, name);
          if (d == nullptr || (kern::Dcache::FlagsOf(d) & kern::kDentryPositive) == 0) {
            reader_errors.fetch_add(1, std::memory_order_relaxed);
          }
          std::snprintf(name, sizeof(name), "neg%d", iter % kNegative);
          d = dc.Lookup(parent, name);
          if (d == nullptr || (kern::Dcache::FlagsOf(d) & kern::kDentryPositive) != 0) {
            reader_errors.fetch_add(1, std::memory_order_relaxed);
          }
          std::snprintf(name, sizeof(name), "absent%d", iter % 13);
          if (dc.Lookup(parent, name) != nullptr) {
            reader_errors.fetch_add(1, std::memory_order_relaxed);
          }
          if ((iter & 63) == 0) {
            kern::CpuSet::QuiescePoint();
          }
        }
        kern::CpuSet::QuiescePoint();
      });
    }
    cpus.Barrier();
  }

  EXPECT_EQ(reader_errors.load(), 0u);

  // Retry-proof phase: a writer relinks/unlinks ONE hot name as fast as it
  // can (so most of its time sits inside the index's seqlock write
  // sections) while a reader spins on the same key. Any preemption that
  // lands inside the reader's read window now forces a failed validation —
  // the retry path — which the batched storm above cannot guarantee on a
  // single-core host. The hot dentry is reused, never freed, so the reader
  // may hold it across any interleaving.
  {
    kern::Dentry* hot = dc.NewDentry(nullptr, parent, "hotname");
    kern::Dcache::SetPositive(hot, &stable_inode);
    std::atomic<bool> stop{false};
    cpus.RunOn(0, [&dc, parent, hot, &stop] {
      uint64_t iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        {
          lxfi::SpinGuard guard(dc.writer_lock(parent));
          dc.LinkChildLocked(parent, hot);
        }
        {
          lxfi::SpinGuard guard(dc.writer_lock(parent));
          dc.UnlinkChildLocked(parent, hot);
        }
        if ((++iter & 1023) == 0) {
          kern::CpuSet::QuiescePoint();
        }
      }
      kern::CpuSet::QuiescePoint();
    });
    cpus.RunOn(2, [&dc, parent, &stop] {
      const std::string_view hot_name("hotname");
      for (uint64_t iter = 0; iter < (1ull << 40); ++iter) {
        dc.Lookup(parent, hot_name);
        if ((iter & 4095) == 0) {
          kern::CpuSet::QuiescePoint();
          if (dc.seqlock_retries() > 0 || iter > (1ull << 24)) {
            break;
          }
        }
      }
      stop.store(true, std::memory_order_relaxed);
      kern::CpuSet::QuiescePoint();
    });
    cpus.Barrier();
    // The retry path must have been provably exercised: at least one
    // lookup overlapped a writer's seqlock section and looped.
    EXPECT_GT(dc.seqlock_retries(), 0u);
    bool linked;
    {
      lxfi::SpinGuard guard(dc.writer_lock(parent));
      linked = dc.FindChildLocked(parent, "hotname") == hot;
    }
    if (!linked) {
      dc.FreeNow(hot);  // FreeTreeNow below only reaps linked dentries
    }
  }

  cpus.Barrier();
  lxfi::EpochReclaimer::Global().Synchronize();
  dc.FreeTreeNow(parent);
  lxfi::EpochReclaimer::Global().Synchronize();
}

}  // namespace
