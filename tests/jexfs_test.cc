// jexfs functional tests: the extent-based journaling filesystem module
// driven through the VFS on a RAM BlockDevice, stock and LXFI-enforced,
// plus the dm-crypt-stacked configuration from the acceptance criteria —
// the same on-disk image mounts unchanged over an enforced dm target, and
// the raw disk underneath carries ciphertext only.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/block/block.h"
#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/kernel/uaccess.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/runtime.h"
#include "src/modules/dm/dm_modules.h"
#include "src/modules/jexfs/jexfs.h"
#include "src/modules/jexfs/jexfs_format.h"

namespace {

constexpr uint64_t kDiskBlocks = 1024;
constexpr uintptr_t kUbuf = 0x1000;

// mkfs from trusted harness code, written through the TOP device so a
// dm-crypt-stacked mount finds a correctly encrypted disk underneath.
void MkfsThroughDevice(kern::Kernel* kernel, kern::BlockDevice* top) {
  std::vector<uint8_t> img(kDiskBlocks * mods::kJexBlockSize);
  ASSERT_TRUE(mods::JexMkfs(img.data(), kDiskBlocks));
  kern::BlockLayer* block = kern::GetBlockLayer(kernel);
  for (uint64_t s = 0; s < kDiskBlocks; ++s) {
    kern::Bio bio;
    bio.sector = s;
    bio.size = mods::kJexBlockSize;
    bio.data = img.data() + s * mods::kJexBlockSize;
    bio.write = true;
    ASSERT_EQ(block->SubmitBio(top, &bio), 0);
  }
}

struct JexRig {
  JexRig(bool isolated, bool crypt) {
    kernel = std::make_unique<kern::Kernel>(256ull << 20);
    if (isolated) {
      // Same configuration as the fsperf block harness: per-principal heap
      // partitions keep jexfs and dm-crypt allocations on disjoint pages,
      // so neither becomes a page-writer of the other's end_io slots.
      lxfi::RuntimeOptions options;
      options.partitioned_heaps = true;
      rt = std::make_unique<lxfi::Runtime>(kernel.get(), options);
    }
    lxfi::InstallKernelApi(kernel.get(), rt.get());
    block = kern::GetBlockLayer(kernel.get());
    raw = block->CreateRamDisk("jexdisk0", kDiskBlocks);
    top = raw;
    if (crypt) {
      EXPECT_NE(kernel->LoadModule(mods::DmCryptModuleDef()), nullptr);
      top = block->DmCreate("jexcrypt0", "crypt", raw, "t3stk3y");
      EXPECT_NE(top, nullptr);
    }
    MkfsThroughDevice(kernel.get(), top);
    jex_mod = kernel->LoadModule(mods::JexfsModuleDef("jexfs", top->name));
    EXPECT_NE(jex_mod, nullptr);
    vfs = kern::GetVfs(kernel.get());
    sb = vfs->Mount("jexfs", "/mnt");
  }

  uintptr_t PutUser(const void* src, size_t n) {
    std::memcpy(kernel->user().UserPtr(kUbuf), src, n);
    return kUbuf;
  }
  void GetUser(void* dst, size_t n) { std::memcpy(dst, kernel->user().UserPtr(kUbuf), n); }

  // Writes `data` to a fresh file at `path` and closes it.
  void WriteFile(const char* path, const std::string& data) {
    int err = 0;
    kern::File* f = vfs->Open(path, kern::kOCreate, &err);
    ASSERT_NE(f, nullptr) << path << " err=" << err;
    ASSERT_EQ(vfs->Write(f, PutUser(data.data(), data.size()), data.size()),
              static_cast<int64_t>(data.size()));
    ASSERT_EQ(vfs->Close(f), 0);
  }

  std::string ReadFile(const char* path) {
    int err = 0;
    kern::File* f = vfs->Open(path, 0, &err);
    if (f == nullptr) {
      return "<open failed: " + std::to_string(err) + ">";
    }
    std::string out;
    char chunk[256];
    int64_t got;
    while ((got = vfs->Read(f, kUbuf, sizeof(chunk))) > 0) {
      GetUser(chunk, static_cast<size_t>(got));
      out.append(chunk, static_cast<size_t>(got));
    }
    vfs->Close(f);
    return out;
  }

  std::unique_ptr<kern::Kernel> kernel;
  std::unique_ptr<lxfi::Runtime> rt;
  kern::BlockLayer* block = nullptr;
  kern::BlockDevice* raw = nullptr;  // the RAM disk
  kern::BlockDevice* top = nullptr;  // raw, or the dm-crypt device over it
  kern::Module* jex_mod = nullptr;
  kern::Vfs* vfs = nullptr;
  kern::SuperBlock* sb = nullptr;
};

std::string Pattern(size_t n, char base) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>(base + static_cast<char>(i % 23));
  }
  return s;
}

class JexfsParam : public ::testing::TestWithParam<bool> {};

TEST_P(JexfsParam, CreateWriteReadBackStat) {
  JexRig rig(GetParam(), /*crypt=*/false);
  ASSERT_NE(rig.sb, nullptr);
  // Multi-extent file: 1500 bytes spans three 512-byte blocks.
  std::string data = Pattern(1500, 'a');
  rig.WriteFile("/mnt/a.txt", data);
  EXPECT_EQ(rig.ReadFile("/mnt/a.txt"), data);
  kern::VfsStat st;
  ASSERT_EQ(rig.vfs->Stat("/mnt/a.txt", &st), 0);
  EXPECT_EQ(st.size, data.size());
  EXPECT_EQ(st.nlink, 1u);
  // Overwrite in place, then extend.
  std::string more = Pattern(2048, 'A');
  rig.WriteFile("/mnt/a.txt", more);
  EXPECT_EQ(rig.ReadFile("/mnt/a.txt"), more);
  if (rig.rt != nullptr) {
    EXPECT_EQ(rig.rt->violation_count(), 0u);
  }
}

TEST_P(JexfsParam, DirectoriesRenameUnlink) {
  JexRig rig(GetParam(), /*crypt=*/false);
  ASSERT_NE(rig.sb, nullptr);
  ASSERT_EQ(rig.vfs->Mkdir("/mnt/d"), 0);
  rig.WriteFile("/mnt/d/x", "payload-x");
  kern::VfsStat before;
  ASSERT_EQ(rig.vfs->Stat("/mnt/d/x", &before), 0);

  // Same-directory rename through the seqlock-correct d_move path.
  ASSERT_EQ(rig.vfs->Rename("/mnt/d/x", "/mnt/d/y"), 0);
  kern::VfsStat after;
  EXPECT_EQ(rig.vfs->Stat("/mnt/d/x", &after), -kern::kEnoent);
  ASSERT_EQ(rig.vfs->Stat("/mnt/d/y", &after), 0);
  EXPECT_EQ(after.ino, before.ino);
  EXPECT_EQ(rig.ReadFile("/mnt/d/y"), "payload-x");

  // Cross-directory rename.
  ASSERT_EQ(rig.vfs->Rename("/mnt/d/y", "/mnt/z"), 0);
  EXPECT_EQ(rig.ReadFile("/mnt/z"), "payload-x");

  // rmdir honours emptiness; unlink empties it.
  rig.WriteFile("/mnt/d/keep", "k");
  EXPECT_EQ(rig.vfs->Rmdir("/mnt/d"), -kern::kEnotempty);
  ASSERT_EQ(rig.vfs->Unlink("/mnt/d/keep"), 0);
  EXPECT_EQ(rig.vfs->Rmdir("/mnt/d"), 0);
  ASSERT_EQ(rig.vfs->Unlink("/mnt/z"), 0);
  EXPECT_EQ(rig.vfs->Stat("/mnt/z", &after), -kern::kEnoent);
  if (rig.rt != nullptr) {
    EXPECT_EQ(rig.rt->violation_count(), 0u);
  }
}

TEST_P(JexfsParam, ErrorPaths) {
  JexRig rig(GetParam(), /*crypt=*/false);
  ASSERT_NE(rig.sb, nullptr);
  int err = 0;
  EXPECT_EQ(rig.vfs->Open("/mnt/nope", 0, &err), nullptr);
  EXPECT_EQ(err, -kern::kEnoent);
  EXPECT_EQ(rig.vfs->Open("/mnt/missingdir/f", kern::kOCreate, &err), nullptr);
  EXPECT_EQ(rig.vfs->Unlink("/mnt/nope"), -kern::kEnoent);
  EXPECT_EQ(rig.vfs->Rename("/mnt/nope", "/mnt/other"), -kern::kEnoent);
  // Existing positive destination: RENAME_NOREPLACE semantics.
  rig.WriteFile("/mnt/src", "s");
  rig.WriteFile("/mnt/dst", "d");
  EXPECT_EQ(rig.vfs->Rename("/mnt/src", "/mnt/dst"), -kern::kEexist);
  // A name longer than the on-disk dirent field must be refused, not
  // truncated into a colliding entry.
  std::string long_name = "/mnt/" + std::string(mods::kJexNameMax + 5, 'n');
  EXPECT_EQ(rig.vfs->Open(long_name.c_str(), kern::kOCreate, &err), nullptr);
  if (rig.rt != nullptr) {
    EXPECT_EQ(rig.rt->violation_count(), 0u);
  }
}

TEST_P(JexfsParam, FsyncRemountPersistence) {
  JexRig rig(GetParam(), /*crypt=*/false);
  ASSERT_NE(rig.sb, nullptr);
  std::string data = Pattern(1300, 'p');
  ASSERT_EQ(rig.vfs->Mkdir("/mnt/sub"), 0);
  rig.WriteFile("/mnt/sub/persist", data);
  int err = 0;
  kern::File* f = rig.vfs->Open("/mnt/sub/persist", 0, &err);
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(rig.vfs->Fsync(f), 0);
  ASSERT_EQ(rig.vfs->Close(f), 0);
  auto st = mods::GetJexfs(*rig.jex_mod);
  ASSERT_NE(st, nullptr);
  EXPECT_GT(st->commits, 0u) << "fsync must have committed journal transactions";

  ASSERT_EQ(rig.vfs->Unmount("/mnt"), 0);
  rig.sb = rig.vfs->Mount("jexfs", "/mnt");
  ASSERT_NE(rig.sb, nullptr);
  EXPECT_EQ(rig.ReadFile("/mnt/sub/persist"), data);
  kern::VfsStat vstat;
  ASSERT_EQ(rig.vfs->Stat("/mnt/sub/persist", &vstat), 0);
  EXPECT_EQ(vstat.size, data.size());
  if (rig.rt != nullptr) {
    EXPECT_EQ(rig.rt->violation_count(), 0u);
  }
}

TEST_P(JexfsParam, StatFsCountsFilesAndBytes) {
  JexRig rig(GetParam(), /*crypt=*/false);
  ASSERT_NE(rig.sb, nullptr);
  rig.WriteFile("/mnt/one", Pattern(600, 'q'));
  rig.WriteFile("/mnt/two", Pattern(100, 'r'));
  kern::VfsStatFs out;
  ASSERT_EQ(rig.vfs->StatFs("/mnt", &out), 0);
  EXPECT_EQ(out.files, 2u);
  EXPECT_EQ(out.bytes, 700u);
}

INSTANTIATE_TEST_SUITE_P(StockAndEnforced, JexfsParam, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Enforced" : "Stock";
                         });

// --- dm-crypt stacked (enforced): the acceptance configuration ---------------

TEST(JexfsOverDmCrypt, FullWorkloadIsCleanAndRawDiskIsCiphertext) {
  JexRig rig(/*isolated=*/true, /*crypt=*/true);
  ASSERT_NE(rig.sb, nullptr);
  ASSERT_NE(rig.top, rig.raw) << "the mount must sit on the dm device";

  // A recognizable plaintext block, fsynced so it reaches the disk.
  std::string secret(512, '\0');
  for (size_t i = 0; i < secret.size(); ++i) {
    secret[i] = static_cast<char>("SECRETBLOCK!"[i % 12]);
  }
  ASSERT_EQ(rig.vfs->Mkdir("/mnt/d"), 0);
  rig.WriteFile("/mnt/d/s", secret);
  int err = 0;
  kern::File* f = rig.vfs->Open("/mnt/d/s", 0, &err);
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(rig.vfs->Fsync(f), 0);
  ASSERT_EQ(rig.vfs->Close(f), 0);
  EXPECT_EQ(rig.ReadFile("/mnt/d/s"), secret);

  // Rename and unlink work identically over the stacked target.
  ASSERT_EQ(rig.vfs->Rename("/mnt/d/s", "/mnt/moved"), 0);
  EXPECT_EQ(rig.ReadFile("/mnt/moved"), secret);

  // The raw RAM disk below dm-crypt never sees the plaintext: search the
  // whole backing store for a 24-byte window of the pattern.
  const uint8_t* backing = rig.raw->backing;
  size_t total = kDiskBlocks * kern::kSectorSize;
  bool leaked = false;
  for (size_t i = 0; i + 24 <= total && !leaked; ++i) {
    leaked = std::memcmp(backing + i, secret.data(), 24) == 0;
  }
  EXPECT_FALSE(leaked) << "plaintext visible on the disk below dm-crypt";
  EXPECT_EQ(rig.rt->violation_count(), 0u);
}

TEST(JexfsOverDmCrypt, RemountPersistsThroughTheStack) {
  JexRig rig(/*isolated=*/true, /*crypt=*/true);
  ASSERT_NE(rig.sb, nullptr);
  std::string data = Pattern(900, 'w');
  rig.WriteFile("/mnt/keep", data);
  int err = 0;
  kern::File* f = rig.vfs->Open("/mnt/keep", 0, &err);
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(rig.vfs->Fsync(f), 0);
  ASSERT_EQ(rig.vfs->Close(f), 0);
  ASSERT_EQ(rig.vfs->Unmount("/mnt"), 0);
  rig.sb = rig.vfs->Mount("jexfs", "/mnt");
  ASSERT_NE(rig.sb, nullptr);
  EXPECT_EQ(rig.ReadFile("/mnt/keep"), data);
  EXPECT_EQ(rig.rt->violation_count(), 0u);
}

}  // namespace
