// Unit tests for the SMP synchronization primitives (src/base/sync.h):
// spinlock mutual exclusion, seqlock reader consistency, single-writer
// counters, and the quiescent-state epoch reclaimer's grace-period rules.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/base/sync.h"

namespace {

using lxfi::EpochReclaimer;
using lxfi::RelaxedCell;
using lxfi::SeqCount;
using lxfi::Spinlock;

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock mu;
  uint64_t counter = 0;  // deliberately plain: the lock must serialize it
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lxfi::SpinGuard guard(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(Spinlock, TryLockReportsHeldState) {
  Spinlock mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(OptionalSpinGuard, EngagesOnlyWhenAsked) {
  Spinlock mu;
  {
    lxfi::OptionalSpinGuard guard(mu, /*engage=*/false);
    EXPECT_TRUE(mu.try_lock());  // not held by the guard
    mu.unlock();
  }
  {
    lxfi::OptionalSpinGuard guard(mu, /*engage=*/true);
    EXPECT_FALSE(mu.try_lock());
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(RelaxedCell, SingleWriterExactness) {
  RelaxedCell cell;
  for (int i = 0; i < 1000; ++i) {
    ++cell;
  }
  cell.Add(24);
  EXPECT_EQ(static_cast<uint64_t>(cell), 1024u);
  cell = 7;
  EXPECT_EQ(cell.value(), 7u);
}

// The seqlock protocol: a writer alternates two fields between consistent
// states {v, 2v}; validated reads must never observe a mixed pair.
TEST(SeqCount, ReadersNeverSeeTornPairs) {
  SeqCount seq;
  uint64_t a = 1;
  uint64_t b = 2;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};

  std::thread writer([&] {
    for (uint64_t v = 2; v < 40000; ++v) {
      seq.WriteBegin();
      __atomic_store_n(&a, v, __ATOMIC_RELAXED);
      __atomic_store_n(&b, 2 * v, __ATOMIC_RELAXED);
      seq.WriteEnd();
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t s = seq.ReadBegin();
        uint64_t ra = __atomic_load_n(&a, __ATOMIC_RELAXED);
        uint64_t rb = __atomic_load_n(&b, __ATOMIC_RELAXED);
        if (!seq.ReadValidate(s)) {
          continue;
        }
        if (rb != 2 * ra) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(torn.load(), 0u);
}

TEST(EpochReclaimer, NoReadersMeansImmediateReclaim) {
  EpochReclaimer& er = EpochReclaimer::Global();
  int freed = 0;
  er.Retire([&freed] { ++freed; });
  er.TryReclaim();
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(er.pending(), 0u);
}

TEST(EpochReclaimer, ReaderBlocksReclaimUntilQuiescent) {
  EpochReclaimer& er = EpochReclaimer::Global();
  EpochReclaimer::Reader* reader = er.Register();
  ASSERT_NE(reader, nullptr);

  int freed = 0;
  er.Retire([&freed] { ++freed; });
  er.TryReclaim();
  // The reader has not passed a quiescent state since the retirement.
  EXPECT_EQ(freed, 0);

  er.Quiesce(reader);
  er.TryReclaim();
  EXPECT_EQ(freed, 1);
  er.Unregister(reader);
}

TEST(EpochReclaimer, IdleReadersDoNotBlockGracePeriods) {
  EpochReclaimer& er = EpochReclaimer::Global();
  EpochReclaimer::Reader* reader = er.Register();
  ASSERT_NE(reader, nullptr);
  er.SetIdle(reader, true);

  int freed = 0;
  er.Retire([&freed] { ++freed; });
  er.Synchronize();  // must not wait on the idle reader
  EXPECT_EQ(freed, 1);

  er.SetIdle(reader, false);
  er.Unregister(reader);
}

TEST(EpochReclaimer, SynchronizeWaitsForActiveReader) {
  EpochReclaimer& er = EpochReclaimer::Global();
  EpochReclaimer::Reader* reader = er.Register();
  ASSERT_NE(reader, nullptr);

  std::atomic<bool> freed{false};
  er.Retire([&freed] { freed.store(true, std::memory_order_release); });

  std::thread quiescer([&] {
    // Simulates the CPU reaching its run-queue boundary a little later.
    for (int i = 0; i < 100; ++i) {
      std::this_thread::yield();
    }
    er.Quiesce(reader);
  });
  er.Synchronize();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
  quiescer.join();
  er.Unregister(reader);
}

TEST(EpochReclaimer, RegisterExhaustionReturnsNull) {
  EpochReclaimer& er = EpochReclaimer::Global();
  std::vector<EpochReclaimer::Reader*> readers;
  while (readers.size() <= EpochReclaimer::kMaxReaders) {
    EpochReclaimer::Reader* r = er.Register();
    if (r == nullptr) {
      break;
    }
    readers.push_back(r);
  }
  // Every earlier test unregistered its readers, so the whole table was free.
  EXPECT_EQ(readers.size(), static_cast<size_t>(EpochReclaimer::kMaxReaders));
  EXPECT_EQ(er.Register(), nullptr);
  for (auto* r : readers) {
    er.Unregister(r);
  }
  EpochReclaimer::Reader* reused = er.Register();
  EXPECT_NE(reused, nullptr);  // slots are reusable
  er.Unregister(reused);
}

}  // namespace
