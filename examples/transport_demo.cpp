// Transport demo: the substrate's simplified TCP recovering a byte stream
// over a 20%-lossy link, next to UDP silently losing a fifth of its
// datagrams — the protocol behavior behind the netperf workload shapes.
//
// Build & run:  ./build/examples/transport_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/kernel/net/transport.h"

int main() {
  auto rng = std::make_shared<lxfi::Rng>(2026);
  constexpr double kLoss = 0.2;

  // --- TCP ---------------------------------------------------------------
  kern::TcpEndpoint sender(/*window=*/8, /*rto_ticks=*/2);
  kern::TcpEndpoint receiver;
  kern::LossyLink tcp_link;
  tcp_link.Connect(&sender, &receiver, [&] { return rng->Chance(kLoss); },
                   [&] { return rng->Chance(kLoss); });

  std::vector<uint8_t> message(64 * 1024);
  for (size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<uint8_t>(i * 31);
  }
  sender.Send(message.data(), message.size());
  int ticks = 0;
  while (!sender.AllAcked() && ticks < 10000) {
    sender.Tick();
    ++ticks;
  }
  bool intact = receiver.received_stream() == message;
  std::printf("TCP over a %.0f%%-lossy link:\n", 100 * kLoss);
  std::printf("  sent %zu bytes in %llu segments, %llu retransmissions, %d ticks\n",
              message.size(), static_cast<unsigned long long>(sender.segments_sent),
              static_cast<unsigned long long>(sender.retransmits), ticks);
  std::printf("  receiver stream intact and in order: %s\n", intact ? "yes" : "NO");

  // --- UDP ---------------------------------------------------------------
  kern::UdpEndpoint usend, urecv;
  kern::LossyLink udp_link;
  udp_link.Connect(&usend, &urecv, [&] { return rng->Chance(kLoss); }, nullptr);
  uint8_t datagram[64] = {};
  for (int i = 0; i < 1000; ++i) {
    usend.Send(datagram, sizeof(datagram));
  }
  std::printf("UDP over the same link:\n");
  std::printf("  sent %llu datagrams, delivered %llu (%.0f%% lost, nobody noticed)\n",
              static_cast<unsigned long long>(usend.sent()),
              static_cast<unsigned long long>(urecv.received()),
              100.0 * static_cast<double>(usend.sent() - urecv.received()) /
                  static_cast<double>(usend.sent()));
  return intact ? 0 : 1;
}
