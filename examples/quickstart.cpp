// Quickstart: isolate a brand-new kernel module with LXFI.
//
// Shows the full workflow from §3 of the paper:
//   1. stand up a simulated kernel and attach the LXFI runtime,
//   2. annotate a kernel interface (the §1 spin_lock_init example),
//   3. write a module whose stores and imports are instrumented,
//   4. watch a benign call succeed and a capability-violating call fail.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/base/log.h"
#include "src/kernel/kernel.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/mem.h"
#include "src/lxfi/runtime.h"
#include "src/lxfi/wrap.h"

namespace {

struct HelloState {
  kern::Module* m = nullptr;
  std::function<void*(size_t)> kmalloc;
  std::function<void(uintptr_t*)> spin_lock_init;
  uintptr_t* my_lock = nullptr;
};

kern::ModuleDef HelloModuleDef(std::shared_ptr<HelloState> st) {
  kern::ModuleDef def;
  def.name = "hello";
  def.imports = {"kmalloc", "kfree", "spin_lock_init", "printk"};
  def.init = [st](kern::Module& m) -> int {
    st->m = &m;
    st->kmalloc = lxfi::GetImport<void*, size_t>(m, "kmalloc");
    st->spin_lock_init = lxfi::GetImport<void, uintptr_t*>(m, "spin_lock_init");
    // kmalloc's post annotation grants this module WRITE over the new
    // allocation, so initializing a lock inside it is fine.
    st->my_lock = static_cast<uintptr_t*>(st->kmalloc(sizeof(uintptr_t)));
    st->spin_lock_init(st->my_lock);
    return 0;
  };
  return def;
}

}  // namespace

int main() {
  lxfi::SetLogLevel(lxfi::LogLevel::kError);

  // 1. Kernel + runtime. InstallKernelApi registers the exported kernel
  //    functions together with their capability annotations (Figure 4
  //    style) and the capability iterators.
  kern::Kernel kernel;
  lxfi::Runtime rt(&kernel);
  lxfi::InstallKernelApi(&kernel, &rt);

  // 2. Load the module: LXFI grants its initial capabilities (CALL for each
  //    imported symbol, WRITE for its sections) and wraps every boundary.
  auto st = std::make_shared<HelloState>();
  kern::Module* m = kernel.LoadModule(HelloModuleDef(st));
  if (m == nullptr) {
    std::printf("module rejected by LXFI\n");
    return 1;
  }
  std::printf("module loaded; lock initialized inside module-owned memory: ok\n");

  // 3. Now replay the paper's §1 attack: trick spin_lock_init into zeroing
  //    memory the module does NOT own — the uid field of the current
  //    process. The annotation pre(check(write, lock, 8)) stops it.
  kern::Task* task = kernel.procs().CreateTask(1000);
  kernel.SetCurrentTask(task);
  auto* uid_as_lock = reinterpret_cast<uintptr_t*>(&task->cred);
  lxfi::ScopedPrincipal as_module(&rt, rt.CtxOf(m)->shared());
  try {
    st->spin_lock_init(uid_as_lock);  // would set uid=0 on a stock kernel
    std::printf("UNEXPECTED: the malicious spin_lock_init went through!\n");
    return 1;
  } catch (const lxfi::LxfiViolation& v) {
    std::printf("malicious spin_lock_init blocked: %s\n", v.what());
  }
  std::printf("task uid is still %u — privilege escalation prevented\n", task->cred.uid);
  return 0;
}
