// Multi-principal demo: the §2.1 dm-crypt scenario.
//
// One dm-crypt module maps two encrypted devices — the "system disk" and a
// "USB stick". Each mapped device is a separate LXFI principal, so even
// module code acting for the USB stick cannot touch the system disk: its
// principal holds a REF capability for its own underlying device only.
//
// Build & run:  ./build/examples/multi_principal_demo
#include <cstdio>
#include <cstring>

#include "src/base/log.h"
#include "src/kernel/block/block.h"
#include "src/kernel/kernel.h"
#include "src/lxfi/kernel_api.h"
#include "src/lxfi/runtime.h"
#include "src/modules/dm/dm_modules.h"

int main() {
  lxfi::SetLogLevel(lxfi::LogLevel::kError);

  kern::Kernel kernel;
  lxfi::Runtime rt(&kernel);
  lxfi::InstallKernelApi(&kernel, &rt);

  kern::BlockLayer* block = kern::GetBlockLayer(&kernel);
  kern::BlockDevice* system_disk = block->CreateRamDisk("sda", 256);
  kern::BlockDevice* usb_stick = block->CreateRamDisk("sdb", 256);

  kern::Module* dm = kernel.LoadModule(mods::DmCryptModuleDef());
  if (dm == nullptr) {
    return 1;
  }
  kern::BlockDevice* crypt_sys = block->DmCreate("crypt-sys", "crypt", system_disk, "syskey");
  kern::BlockDevice* crypt_usb = block->DmCreate("crypt-usb", "crypt", usb_stick, "usbkey");
  std::printf("dm-crypt mapping two devices; LXFI principals in the module:\n");
  for (const auto& p : rt.CtxOf(dm)->instances()) {
    std::printf("  %s (WRITE caps: %zu, REF caps: %zu)\n", p->DebugName().c_str(),
                p->caps().write_count(), p->caps().ref_count());
  }

  // Normal operation: write + read back through each crypt device.
  uint8_t buf[512];
  std::memset(buf, 0x5a, sizeof(buf));
  kern::Bio bio;
  bio.sector = 0;
  bio.size = sizeof(buf);
  bio.data = buf;
  bio.write = true;
  block->SubmitBio(crypt_sys, &bio);
  bio.write = false;
  std::memset(buf, 0, sizeof(buf));
  block->SubmitBio(crypt_sys, &bio);
  std::printf("\ncrypt-sys roundtrip ok: %s; ciphertext differs on disk: %s\n",
              buf[0] == 0x5a ? "yes" : "NO", system_disk->backing[0] != 0x5a ? "yes" : "NO");

  // The isolation claim: the USB target's principal holds a REF for sdb
  // only. A compromise of that instance cannot name sda in a kernel call.
  kern::DmTarget* usb_target = block->TargetOf(crypt_usb);
  lxfi::Principal* usb_principal =
      rt.CtxOf(dm)->Lookup(reinterpret_cast<uintptr_t>(usb_target));
  bool owns_own = rt.Owns(usb_principal, lxfi::Capability::Ref("block_device", usb_stick));
  bool owns_other = rt.Owns(usb_principal, lxfi::Capability::Ref("block_device", system_disk));
  std::printf("\nUSB instance principal owns REF(sdb): %s, REF(sda): %s\n",
              owns_own ? "yes" : "NO", owns_other ? "YES (bad!)" : "no");
  std::printf("=> a compromised USB mapping can corrupt only its own device,\n");
  std::printf("   exactly the §2.1 scenario multi-principal modules exist for.\n");
  return owns_own && !owns_other ? 0 : 1;
}
