// Network driver demo: the paper's Figure 1/4 scenario end to end.
//
// Loads the isolated e1000 driver, pushes traffic both ways through the
// simulated NIC, and prints the driver statistics plus the LXFI guard
// counters the traffic generated — a miniature of the §8.4 evaluation.
//
// Build & run:  ./build/examples/netdriver_demo
#include <cstdio>

#include "src/base/log.h"
#include "src/eval/netperf.h"
#include "src/lxfi/guards.h"
#include "src/lxfi/runtime.h"

int main() {
  lxfi::SetLogLevel(lxfi::LogLevel::kError);

  eval::NetperfHarness harness(/*isolated=*/true, /*guard_timing=*/true);
  std::printf("e1000 loaded under LXFI; each NIC is its own principal\n");
  std::printf("(pci_dev, net_device and napi names aliased to one principal)\n\n");

  constexpr uint64_t kPackets = 5000;
  eval::NetperfMeasurement tx = harness.Run({eval::NetWorkload::kUdpStreamTx, kPackets});
  std::printf("TX: %llu packets transmitted, %.0f ns/packet through the full path\n",
              static_cast<unsigned long long>(tx.packets), tx.PathNsPerPacket());

  eval::NetperfMeasurement rx = harness.Run({eval::NetWorkload::kUdpStreamRx, kPackets});
  std::printf("RX: %llu packets delivered through IRQ -> NAPI poll -> netif_rx\n\n",
              static_cast<unsigned long long>(rx.packets));

  std::printf("guards executed during RX (per packet):\n");
  double pkts = static_cast<double>(rx.packets);
  for (int i = 0; i < static_cast<int>(lxfi::GuardType::kCount); ++i) {
    auto t = static_cast<lxfi::GuardType>(i);
    std::printf("  %-22s %6.1f\n", lxfi::GuardTypeName(t),
                static_cast<double>(rx.guard_counts[i]) / pkts);
  }
  std::printf("\nzero violations: %llu — the annotated interface contracts all held\n",
              static_cast<unsigned long long>(harness.runtime()->violation_count()));
  return harness.runtime()->violation_count() == 0 ? 0 : 1;
}
